//! The composable run API: [`RunSpec`] describes *what* to run,
//! [`Runner`] owns the one canonical profile → tier → select → train
//! pipeline that executes it.
//!
//! The paper's evaluation (§5) is a cross product of selection strategy
//! (vanilla / static tier policy / adaptive / deadline), aggregation
//! mode (wait-all vs Bonawitz-style over-selection), local-training
//! variant (FedAvg vs FedProx) and re-profiling cadence. A [`RunSpec`]
//! is exactly that cross product as a serde-serializable value, so every
//! cell of the grid — including combinations the paper never ran, like
//! FedProx under adaptive tiering — is one declarative description away:
//!
//! ```no_run
//! use tifl_core::experiment::ExperimentConfig;
//! use tifl_core::runner::Experiment;
//!
//! let cfg = ExperimentConfig::cifar10_resource_het(42);
//! let report = cfg.runner().adaptive(None).fedprox(0.01).run();
//! println!("final accuracy {:.3}", report.final_accuracy());
//! ```
//!
//! A [`Runner`] binds specs to one experiment and caches the profiling
//! outcome ([`TierAssignment`] + [`ProfileResult`]), so multi-curve
//! figure binaries profile once per configuration instead of once per
//! curve. Anything implementing [`Experiment`] gets the full API —
//! `ExperimentConfig` and `tifl_leaf::LeafExperiment` both do.
//!
//! RNG streams are bit-for-bit compatible with the legacy `run_*`
//! methods: the selector stream is `split_seed(seed, 0x5E1EC7)` (keyed
//! per re-profiling segment exactly as before) and the session stream is
//! owned by [`Experiment::build_session`], so a spec reproducing a
//! legacy call reproduces its [`TrainingReport`] exactly.

use crate::baselines::DeadlineSelector;
use crate::exec::{EventEngine, ExecBackend};
use crate::experiment::ExperimentConfig;
use crate::policy::Policy;
use crate::profiler::{ProfileResult, Profiler, ProfilerConfig};
use crate::scheduler::{AdaptiveConfig, AdaptiveTierSelector, StaticTierSelector};
use crate::tiering::{TierAssignment, TieringConfig};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use tifl_comm::{CodecSpec, CommSpec, HierarchySpec, LinkModel};
use tifl_fl::selector::{ClientSelector, RandomSelector};
use tifl_fl::session::{AggregationMode, Session, SessionOverrides};
use tifl_fl::TrainingReport;
use tifl_obs::{
    HostClock, HostProfiler, HostSpan, MetricsSnapshot, Phase, PhaseTotals, RealClock, RunObserver,
    TraceEvent, TraceRecord,
};
use tifl_tensor::split_seed;

/// Which client-selection strategy drives the run (the rows of the
/// paper's evaluation matrix).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub enum SelectionStrategy {
    /// Vanilla FedAvg: uniform random over the whole pool (Algorithm 1).
    #[default]
    Vanilla,
    /// Static tier selection under a fixed probability vector (§4.3).
    /// A vanilla [`Policy`] degrades gracefully to [`Vanilla`]
    /// (matching the legacy `run_policy` behaviour).
    ///
    /// [`Vanilla`]: SelectionStrategy::Vanilla
    TierPolicy {
        /// The Table 1 policy to select tiers with.
        policy: Policy,
    },
    /// Adaptive credit-based tier selection (Algorithm 2, §4.4).
    Adaptive {
        /// Selector parameters; `None` uses [`AdaptiveConfig::for_run`]
        /// defaults for the experiment's round count and tier count.
        config: Option<AdaptiveConfig>,
    },
    /// FedCS-style deadline-filtered random selection (§2 related work).
    Deadline {
        /// Per-round response deadline over profiled latencies.
        deadline_sec: f64,
    },
}

impl SelectionStrategy {
    /// True when the strategy selects uniformly from the whole pool
    /// (either explicitly or via a vanilla tier policy).
    #[must_use]
    pub fn is_vanilla(&self) -> bool {
        match self {
            SelectionStrategy::Vanilla => true,
            SelectionStrategy::TierPolicy { policy } => policy.is_vanilla(),
            _ => false,
        }
    }

    /// True when the strategy needs profiled latencies to select.
    #[must_use]
    pub fn needs_profile(&self) -> bool {
        !self.is_vanilla()
    }
}

/// The local-training objective (§2 related work).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum LocalTraining {
    /// Plain FedAvg local SGD/RMSprop — keeps whatever proximal
    /// coefficient the experiment's `ClientConfig` already carries.
    #[default]
    FedAvg,
    /// FedProx (Li et al.): add the proximal term `μ‖w − w_global‖²/2`
    /// to every local objective.
    FedProx {
        /// Proximal coefficient μ.
        mu: f32,
    },
}

/// A declarative, serializable description of one training run — the
/// cross product of the §5 evaluation axes.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RunSpec {
    /// Client-selection strategy.
    #[serde(default)]
    pub selection: SelectionStrategy,
    /// Update-collection strategy: `None` inherits the experiment's
    /// configured mode; `Some(WaitAll)` reproduces Algorithm 1 and
    /// `Some(FirstK { .. })` the Bonawitz et al. over-selection
    /// baseline, regardless of what the experiment configured.
    #[serde(default)]
    pub aggregation: Option<AggregationMode>,
    /// Local-training variant.
    #[serde(default)]
    pub local: LocalTraining,
    /// Re-profile (and re-tier) every this many rounds (§4.2's answer
    /// to drifting device performance). `None` profiles once up front.
    #[serde(default)]
    pub reprofile_every: Option<u64>,
    /// Report label override; `None` derives one from the other fields
    /// (see [`RunSpec::display_label`]).
    #[serde(default)]
    pub label: Option<String>,
    /// Execution mechanism (see [`ExecBackend`]). Never changes the
    /// results — [`ExecBackend::EventDriven`] is bit-for-bit equal to
    /// the default lockstep loop — so it does not decorate the label;
    /// but [`AggregationMode::Async`] scenarios require it.
    #[serde(default)]
    pub backend: ExecBackend,
    /// Communication model: update codec × link model (× optional
    /// aggregation hierarchy). `None` inherits the experiment's
    /// communication setup (the legacy scalar model unless the
    /// experiment configures one); `Some(CommSpec::default())` is the
    /// bit-for-bit Identity/cluster-default equivalent of `None`.
    #[serde(default)]
    pub comm: Option<CommSpec>,
}

/// A profiling outcome shareable across runners and threads — the
/// currency of cross-run profile caches (e.g. the sweep scheduler's):
/// one measurement, many concurrent consumers.
pub type SharedProfile = Arc<(TierAssignment, ProfileResult)>;

impl RunSpec {
    /// The axis the profiling outcome depends on: profiled latencies
    /// see the communication model (links and encoded upload sizes) and
    /// *nothing else* in the spec. This is exactly the [`Runner`]'s
    /// profile-cache key; cross-run caches key on
    /// (experiment, `profile_axis()`) the same way.
    #[must_use]
    pub fn profile_axis(&self) -> Option<CommSpec> {
        self.comm
    }

    /// The session-level overrides this spec implies.
    #[must_use]
    pub fn session_overrides(&self) -> SessionOverrides {
        SessionOverrides {
            aggregation: self.aggregation,
            proximal_mu: match self.local {
                LocalTraining::FedAvg => None,
                LocalTraining::FedProx { mu } => Some(mu),
            },
            comm: self.comm,
        }
    }

    /// The `TrainingReport::policy` label for this spec: the explicit
    /// [`RunSpec::label`] if set, otherwise the selector's name with
    /// `fedprox(μ)` / `overselect(factor)` / `+reprofile` decorations
    /// (matching the labels the legacy `run_*` methods produced).
    /// An inherited aggregation mode (`aggregation: None`) is not
    /// decorated, mirroring how legacy `run_policy` never relabelled
    /// runs on over-selecting configs.
    #[must_use]
    pub fn display_label(&self) -> String {
        if let Some(label) = &self.label {
            return label.clone();
        }
        let mut base = match &self.selection {
            SelectionStrategy::Vanilla => "vanilla".to_string(),
            SelectionStrategy::TierPolicy { policy } => policy.name.clone(),
            SelectionStrategy::Adaptive { .. } => "adaptive".to_string(),
            SelectionStrategy::Deadline { .. } => "fedcs".to_string(),
        };
        if let LocalTraining::FedProx { mu } = self.local {
            base = if self.selection.is_vanilla() {
                format!("fedprox({mu})")
            } else {
                format!("{base}+fedprox({mu})")
            };
        }
        if let Some(AggregationMode::FirstK { factor }) = self.aggregation {
            base = if base == "vanilla" {
                format!("overselect({factor})")
            } else {
                format!("{base}+overselect({factor})")
            };
        }
        if let Some(AggregationMode::Async { max_staleness }) = self.aggregation {
            base = if base == "vanilla" {
                format!("async({max_staleness})")
            } else {
                format!("{base}+async({max_staleness})")
            };
        }
        // The codec decorates only when it is lossy: an Identity comm
        // spec is bit-for-bit the undecorated run, so its label (and
        // reports) must match too. Unlike the other axes the bare
        // suffix (`i8`, `topk(0.1)`) would be cryptic alone, so the
        // selection base always stays.
        if let Some(suffix) = self.comm.and_then(|c| c.codec.label_suffix()) {
            base = format!("{base}+{suffix}");
        }
        if self.reprofile_every.is_some() {
            base = format!("{base}+reprofile");
        }
        base
    }
}

/// An experiment a [`Runner`] can execute: everything the canonical
/// pipeline needs — seeds, horizons, and fresh [`Session`]s.
///
/// Implemented by [`ExperimentConfig`] and `tifl_leaf::LeafExperiment`;
/// implement it for your own experiment type to get the whole
/// [`RunSpec`] grid (including the profiling cache and re-profiling)
/// for free.
pub trait Experiment {
    /// Root seed; the selector stream (`0x5E1EC7`) derives from it.
    fn seed(&self) -> u64;
    /// Global rounds `N`.
    fn rounds(&self) -> u64;
    /// `|K|`: total clients in the pool.
    fn num_clients(&self) -> usize;
    /// Profiler parameters (§4.2).
    fn profiler_config(&self) -> ProfilerConfig;
    /// Tiering parameters (`m` tiers).
    fn tiering_config(&self) -> TieringConfig;
    /// Build a fresh training session with `overrides` applied to the
    /// session configuration (deterministic per experiment).
    fn build_session(&self, overrides: &SessionOverrides) -> Session;

    /// Run the profiler over all clients and tier them (§4.2) — the one
    /// canonical implementation shared by every selection strategy.
    ///
    /// Prefer [`Runner::profile`] in loops: it caches this result.
    #[must_use]
    fn profile_and_tier(&self) -> (TierAssignment, ProfileResult) {
        self.profile_and_tier_with(&SessionOverrides::default())
    }

    /// As [`Experiment::profile_and_tier`] under session overrides —
    /// profiled latencies see the overrides' communication model
    /// (links and encoded upload sizes), so a bandwidth-heterogeneous
    /// or compressed run is tiered by the latencies it will actually
    /// experience.
    #[must_use]
    fn profile_and_tier_with(
        &self,
        overrides: &SessionOverrides,
    ) -> (TierAssignment, ProfileResult) {
        let session = self.build_session(overrides);
        let profiler = Profiler::new(self.profiler_config());
        let result = profiler.profile(session.cluster(), |c| session.task_for(c));
        let assignment =
            TierAssignment::from_latencies(&result.mean_latency, &self.tiering_config());
        (assignment, result)
    }

    /// A [`Runner`] bound to this experiment, with a vanilla default
    /// spec — the entry point of the fluent builder:
    /// `cfg.runner().adaptive(None).fedprox(0.01).run()`.
    fn runner(&self) -> Runner<'_, Self>
    where
        Self: Sized,
    {
        Runner::new(self)
    }
}

/// Executes [`RunSpec`]s against one [`Experiment`], caching the
/// profiling outcome across runs.
///
/// The builder methods mutate the runner's current spec and return
/// `&mut Self`, so one-liners
/// (`cfg.runner().policy(&p).reprofile_every(10).run()`) and reuse
/// across curves
/// (`let mut r = cfg.runner(); for p in &policies { r.policy(p).run(); }`)
/// both work; the latter profiles once for the whole loop.
pub struct Runner<'a, E: Experiment + ?Sized> {
    exp: &'a E,
    spec: RunSpec,
    /// Cached profiling outcome, keyed by the comm axis it was measured
    /// under (profiled latencies depend on links and encoded upload
    /// sizes, and on nothing else in the spec — see
    /// [`RunSpec::profile_axis`]). Shared so a cross-run cache can hand
    /// the same measurement to many runners at once.
    profile: Option<(Option<CommSpec>, SharedProfile)>,
    profile_runs: usize,
    /// Host clock for the observed-run phase profiler; `None` means a
    /// fresh [`RealClock`] per observed run. Tests (and the sweep
    /// scheduler) inject a shared clock here — a [`FrozenClock`] pins
    /// span structure.
    ///
    /// [`FrozenClock`]: tifl_obs::FrozenClock
    host_clock: Option<Arc<dyn HostClock>>,
}

impl<'a, E: Experiment + ?Sized> Runner<'a, E> {
    /// Bind a runner to `exp` with [`RunSpec::default`] defaults
    /// (vanilla selection, inherited aggregation, FedAvg).
    #[must_use]
    pub fn new(exp: &'a E) -> Self {
        Self::with_spec(exp, RunSpec::default())
    }

    /// Bind a runner to `exp` with an explicit starting spec.
    #[must_use]
    pub fn with_spec(exp: &'a E, spec: RunSpec) -> Self {
        Self {
            exp,
            spec,
            profile: None,
            profile_runs: 0,
            host_clock: None,
        }
    }

    /// Bind a runner to `exp` with `spec` and a profiling outcome that
    /// was already measured elsewhere (keyed by the spec's
    /// [`RunSpec::profile_axis`]). The runner will not re-profile
    /// unless its comm axis is later changed — the seam a cross-run
    /// scheduler uses to profile each topology once per sweep instead
    /// of once per run.
    ///
    /// The installed profile must be the outcome of
    /// [`Experiment::profile_and_tier_with`] under this spec's comm
    /// overrides, or run results will differ from an unshared runner.
    #[must_use]
    pub fn with_shared_profile(exp: &'a E, spec: RunSpec, profile: SharedProfile) -> Self {
        let comm = spec.profile_axis();
        let mut runner = Self::with_spec(exp, spec);
        runner.install_profile(comm, profile);
        runner
    }

    /// The current run specification.
    #[must_use]
    pub fn spec(&self) -> &RunSpec {
        &self.spec
    }

    /// Replace the whole spec (e.g. one deserialized from JSON).
    pub fn set_spec(&mut self, spec: RunSpec) -> &mut Self {
        self.spec = spec;
        self
    }

    /// Reset the spec to [`RunSpec::default`] (vanilla selection,
    /// inherited aggregation, FedAvg, no re-profiling, derived label)
    /// while keeping the profiling cache — for runners composing many
    /// unrelated curves over one configuration.
    pub fn reset(&mut self) -> &mut Self {
        self.set_spec(RunSpec::default())
    }

    // -- fluent spec builders ---------------------------------------------

    /// Select uniformly at random from the whole pool (Algorithm 1).
    pub fn vanilla(&mut self) -> &mut Self {
        self.spec.selection = SelectionStrategy::Vanilla;
        self
    }

    /// Select via a static tier policy (§4.3); a vanilla policy behaves
    /// like [`Runner::vanilla`].
    pub fn policy(&mut self, policy: &Policy) -> &mut Self {
        self.spec.selection = SelectionStrategy::TierPolicy {
            policy: policy.clone(),
        };
        self
    }

    /// Select via the adaptive credit-based algorithm (Algorithm 2);
    /// `None` uses [`AdaptiveConfig::for_run`] defaults.
    pub fn adaptive(&mut self, config: Option<AdaptiveConfig>) -> &mut Self {
        self.spec.selection = SelectionStrategy::Adaptive { config };
        self
    }

    /// Select via the FedCS deadline baseline over profiled latencies.
    pub fn deadline(&mut self, deadline_sec: f64) -> &mut Self {
        self.spec.selection = SelectionStrategy::Deadline { deadline_sec };
        self
    }

    /// Force an update-collection strategy (the default inherits the
    /// experiment's configured mode).
    pub fn aggregation(&mut self, mode: AggregationMode) -> &mut Self {
        self.spec.aggregation = Some(mode);
        self
    }

    /// Bonawitz et al. over-selection: ask `ceil(|C| · factor)` clients,
    /// aggregate the first `|C|` responders.
    pub fn overselect(&mut self, factor: f64) -> &mut Self {
        self.aggregation(AggregationMode::FirstK { factor })
    }

    /// Staleness-aware asynchronous aggregation (FedAsync-style): no
    /// round barrier, updates staler than `max_staleness` model
    /// versions are discarded. Implies the event-driven backend — this
    /// also switches the backend to [`ExecBackend::EventDriven`]
    /// (machine-default threads) if the spec still has the lockstep
    /// one, since the lockstep loop cannot express it.
    pub fn async_aggregation(&mut self, max_staleness: u64) -> &mut Self {
        if self.spec.backend == ExecBackend::Lockstep {
            self.spec.backend = ExecBackend::EventDriven { threads: 0 };
        }
        self.aggregation(AggregationMode::Async { max_staleness })
    }

    /// Choose the execution mechanism (results are backend-invariant;
    /// see [`ExecBackend`]).
    pub fn backend(&mut self, backend: ExecBackend) -> &mut Self {
        self.spec.backend = backend;
        self
    }

    /// Execute on the event-driven engine with `threads` training
    /// workers (0 = machine default).
    pub fn event_driven(&mut self, threads: usize) -> &mut Self {
        self.backend(ExecBackend::EventDriven { threads })
    }

    /// Execute on the legacy lockstep round loop (the default).
    pub fn lockstep(&mut self) -> &mut Self {
        self.backend(ExecBackend::Lockstep)
    }

    /// Train with the plain FedAvg objective (keeps the experiment's
    /// configured proximal coefficient).
    pub fn fedavg(&mut self) -> &mut Self {
        self.spec.local = LocalTraining::FedAvg;
        self
    }

    /// Train with the FedProx proximal objective, coefficient `mu`.
    pub fn fedprox(&mut self, mu: f32) -> &mut Self {
        self.spec.local = LocalTraining::FedProx { mu };
        self
    }

    /// Re-profile and re-tier every `every` rounds.
    pub fn reprofile_every(&mut self, every: u64) -> &mut Self {
        self.spec.reprofile_every = Some(every);
        self
    }

    // -- communication ----------------------------------------------------

    /// Install a full communication spec (codec × link model ×
    /// optional hierarchy).
    pub fn comm(&mut self, spec: CommSpec) -> &mut Self {
        self.spec.comm = Some(spec);
        self
    }

    /// Mutable access to the spec's comm axis, defaulting it in first.
    fn comm_mut(&mut self) -> &mut CommSpec {
        self.spec.comm.get_or_insert_with(CommSpec::default)
    }

    /// Compress every client upload with the given codec (keeps the
    /// spec's link model).
    pub fn codec(&mut self, codec: CodecSpec) -> &mut Self {
        self.comm_mut().codec = codec;
        self
    }

    /// Whole-update affine int8 upload compression (~4x fewer uplink
    /// bytes, error bounded by one quantization step per weight).
    pub fn quantized_i8(&mut self) -> &mut Self {
        self.codec(CodecSpec::QuantizeI8)
    }

    /// Magnitude top-k sparsification of the upload delta: keep the
    /// `frac` largest-magnitude coordinates.
    pub fn topk(&mut self, frac: f64) -> &mut Self {
        self.codec(CodecSpec::TopK { frac })
    }

    /// Time transfers through the given link model (keeps the spec's
    /// codec).
    pub fn link(&mut self, link: LinkModel) -> &mut Self {
        self.comm_mut().link = link;
        self
    }

    /// Aggregate through a master/child hierarchy over a `plane_bps`
    /// aggregation plane; the combine cost joins each round's latency.
    pub fn hierarchical(&mut self, fan_out: usize, plane_bps: f64) -> &mut Self {
        self.comm_mut().hierarchy = Some(HierarchySpec { fan_out, plane_bps });
        self
    }

    /// Override the report label.
    pub fn label(&mut self, label: impl Into<String>) -> &mut Self {
        self.spec.label = Some(label.into());
        self
    }

    /// Inject the host clock observed runs stamp their phase spans
    /// with (default: a fresh [`RealClock`] per observed run). Host
    /// time is operator-facing only; swapping the clock can never
    /// change a report.
    pub fn host_clock(&mut self, clock: Arc<dyn HostClock>) -> &mut Self {
        self.host_clock = Some(clock);
        self
    }

    // -- profiling cache --------------------------------------------------

    /// The profiling outcome for this experiment, computed on first use
    /// and cached for every later run/estimate from this runner. The
    /// cache is keyed by the spec's comm axis: switching codec or link
    /// model re-profiles (the latencies genuinely change); everything
    /// else reuses the measurement.
    pub fn profile(&mut self) -> &(TierAssignment, ProfileResult) {
        self.ensure_profile();
        self.profile
            .as_ref()
            .expect("profile cached above")
            .1
            .as_ref()
    }

    /// As [`Runner::profile`] but returns a [`SharedProfile`] handle,
    /// so the measurement can be installed into other runners
    /// ([`Runner::install_profile`]) or parked in a cross-run cache.
    pub fn shared_profile(&mut self) -> SharedProfile {
        self.ensure_profile();
        Arc::clone(&self.profile.as_ref().expect("profile cached above").1)
    }

    /// Install an externally measured profiling outcome, keyed by the
    /// comm axis it was measured under. Does not count as a profiler
    /// run ([`Runner::profile_count`]); a later comm-axis change still
    /// invalidates it.
    pub fn install_profile(&mut self, comm: Option<CommSpec>, profile: SharedProfile) -> &mut Self {
        self.profile = Some((comm, profile));
        self
    }

    fn ensure_profile(&mut self) {
        let comm = self.spec.profile_axis();
        let stale = self.profile.as_ref().is_some_and(|(c, _)| *c != comm);
        if self.profile.is_none() || stale {
            let overrides = SessionOverrides {
                comm,
                ..SessionOverrides::default()
            };
            self.profile = Some((comm, Arc::new(self.exp.profile_and_tier_with(&overrides))));
            self.profile_runs += 1;
        }
    }

    /// The cached tier assignment (profiles on first use).
    pub fn tiers(&mut self) -> &TierAssignment {
        &self.profile().0
    }

    /// How many times this runner actually ran the profiler — the
    /// cache-effectiveness observable the figure binaries assert on.
    #[must_use]
    pub fn profile_count(&self) -> usize {
        self.profile_runs
    }

    /// Eq. 6 training-time estimate for a (non-vanilla) policy under
    /// this experiment's cached tiers.
    pub fn estimate(&mut self, policy: &Policy) -> f64 {
        let rounds = self.exp.rounds();
        crate::estimator::estimate_for_policy(self.tiers(), policy, rounds)
    }

    // -- execution --------------------------------------------------------

    /// Execute the current spec and return the report.
    ///
    /// # Panics
    /// Panics if the spec asks for re-profiling under vanilla selection
    /// or with a zero interval, or if the selection strategy cannot
    /// supply `clients_per_round` clients.
    pub fn run(&mut self) -> TrainingReport {
        self.run_with_session().0
    }

    /// As [`Runner::run`] but also returns the finished session, so
    /// callers can inspect the final global model (per-class accuracy,
    /// further evaluation, checkpointing).
    pub fn run_with_session(&mut self) -> (TrainingReport, Session) {
        let overrides = self.spec.session_overrides();
        let mut session = self.exp.build_session(&overrides);
        let report = self.execute(&mut session);
        (report, session)
    }

    /// As [`Runner::run`] but observed: the session carries a
    /// [`RunObserver`] whose ring buffer holds up to `ring_capacity`
    /// trace records (0 = collect metrics only, store no trace). The
    /// report is bit-for-bit the one [`Runner::run`] produces —
    /// observation derives everything from the round plans and the
    /// virtual clock and feeds nothing back — and the virtual-time
    /// trace itself is identical across execution backends and thread
    /// counts.
    pub fn run_observed(&mut self, ring_capacity: usize) -> ObservedRun {
        let overrides = self.spec.session_overrides();
        let mut session = self.exp.build_session(&overrides);
        session.attach_observer(RunObserver::new(ring_capacity));
        // The host profiler rides alongside the observer: its spans are
        // operator-facing wall-clock attribution, kept strictly outside
        // the deterministic surface. Ring capacity scales with the
        // horizon (a handful of spans per round) and is preallocated —
        // steady-state rounds stay allocation-free with it attached.
        let clock = self
            .host_clock
            .as_ref()
            .map_or_else(RealClock::shared, Arc::clone);
        let span_cap = (self.exp.rounds() as usize).saturating_mul(8).min(1 << 16) + 16;
        let mut prof = HostProfiler::with_clock(span_cap, clock);
        if self.spec.selection.needs_profile() && self.spec.reprofile_every.is_none() {
            // The up-front §4.2 profiling pass, emitted at t = 0 so the
            // trace records where the tiers came from. A shared-profile
            // runner emits the same values: the measurement is the
            // same, only who computed it differs (and its Profile span
            // then costs only a cache lookup).
            let clients = self.exp.num_clients() as u32;
            let t_prof = prof.begin();
            let profile = self.shared_profile();
            prof.end(Phase::Profile, 0, t_prof);
            session.trace_event(
                0.0,
                TraceEvent::ProfilePass {
                    clients,
                    dropouts: profile.1.dropouts().len() as u32,
                    profiling_sec: profile.1.profiling_time,
                },
            );
        }
        session.attach_host_profiler(prof);
        let report = self.execute(&mut session);
        let host = session
            .take_host_profiler()
            .expect("host profiler attached above");
        let (records, metrics) = session
            .take_observer()
            .expect("observer attached above")
            .finish();
        ObservedRun {
            report,
            records,
            metrics,
            host_phases: host.totals(),
            host_spans: host.spans(),
        }
    }

    /// Drive the spec against an already-built session (the shared
    /// tail of [`Runner::run_with_session`] / [`Runner::run_observed`]).
    fn execute(&mut self, session: &mut Session) -> TrainingReport {
        let mut report = match self.spec.reprofile_every {
            None => {
                let seed = split_seed(self.exp.seed(), 0x5E1EC7);
                let mut selector = self.build_selector(seed);
                match self.spec.backend {
                    ExecBackend::Lockstep => session.run(selector.as_mut()),
                    ExecBackend::EventDriven { threads } => {
                        EventEngine::new(threads).run(session, selector.as_mut())
                    }
                }
            }
            Some(every) => self.run_segmented(session, every),
        };
        report.policy = self.spec.display_label();
        report
    }

    /// Build the spec's selector from the (cached) profile.
    fn build_selector(&mut self, seed: u64) -> Box<dyn ClientSelector> {
        let selection = self.spec.selection.clone();
        match selection {
            s if s.is_vanilla() => Box::new(RandomSelector::new(self.exp.num_clients(), seed)),
            SelectionStrategy::TierPolicy { policy } => {
                let assignment = self.tiers().clone();
                Box::new(StaticTierSelector::new(assignment, policy, seed))
            }
            SelectionStrategy::Adaptive { config } => {
                let rounds = self.exp.rounds();
                let assignment = self.tiers().clone();
                let config = config
                    .unwrap_or_else(|| AdaptiveConfig::for_run(rounds, assignment.num_tiers()));
                Box::new(AdaptiveTierSelector::new(assignment, config, seed))
            }
            SelectionStrategy::Deadline { deadline_sec } => {
                let latencies = self.profile().1.mean_latency.clone();
                Box::new(DeadlineSelector::new(latencies, deadline_sec, seed))
            }
            // tifl-lint: allow(panic-in-library) — invariant panic: the is_vanilla branch above handles this variant
            SelectionStrategy::Vanilla => unreachable!("covered by the is_vanilla arm"),
        }
    }

    /// The periodic re-profiling loop (§4.2): every `every` rounds,
    /// re-measure latencies at the current round position, rebuild the
    /// tiers and a fresh selector (seeded per segment), and continue the
    /// same session. Adaptive segments restart Algorithm 2's credits
    /// and probabilities, since the old tiers they refer to are gone.
    fn run_segmented(&mut self, session: &mut Session, every: u64) -> TrainingReport {
        assert!(
            self.spec.selection.needs_profile(),
            "re-profiling requires a tiered policy"
        );
        assert!(every > 0, "re-profiling interval must be positive");
        let profiler = Profiler::new(self.exp.profiler_config());
        let tiering = self.exp.tiering_config();
        let rounds_total = self.exp.rounds();
        let mut rounds = Vec::with_capacity(rounds_total as usize);
        let mut done = 0u64;
        while done < rounds_total {
            let t_prof = session.host_begin();
            let profile = profiler.profile_at(session.cluster(), |c| session.task_for(c), done);
            session.host_end(Phase::Profile, done, t_prof);
            let now = session.now();
            session.trace_event(
                now,
                TraceEvent::ProfilePass {
                    clients: self.exp.num_clients() as u32,
                    dropouts: profile.dropouts().len() as u32,
                    profiling_sec: profile.profiling_time,
                },
            );
            let seed = split_seed(self.exp.seed(), split_seed(0x5E1EC7, done));
            let mut selector: Box<dyn ClientSelector> =
                match &self.spec.selection {
                    SelectionStrategy::TierPolicy { policy } => {
                        let assignment =
                            TierAssignment::from_latencies(&profile.mean_latency, &tiering);
                        Box::new(StaticTierSelector::new(assignment, policy.clone(), seed))
                    }
                    SelectionStrategy::Adaptive { config } => {
                        let assignment =
                            TierAssignment::from_latencies(&profile.mean_latency, &tiering);
                        let config = config.unwrap_or_else(|| {
                            AdaptiveConfig::for_run(rounds_total, assignment.num_tiers())
                        });
                        Box::new(AdaptiveTierSelector::new(assignment, config, seed))
                    }
                    SelectionStrategy::Deadline { deadline_sec } => Box::new(
                        DeadlineSelector::new(profile.mean_latency, *deadline_sec, seed),
                    ),
                    // tifl-lint: allow(panic-in-library) — invariant panic: vanilla selection is dispatched before this match
                    SelectionStrategy::Vanilla => unreachable!("rejected above"),
                };
            let segment = every.min(rounds_total - done);
            match self.spec.backend {
                ExecBackend::Lockstep => {
                    for _ in 0..segment {
                        rounds.push(session.run_round(selector.as_mut()));
                    }
                }
                ExecBackend::EventDriven { threads } => {
                    rounds.extend(EventEngine::new(threads).run_rounds(
                        session,
                        selector.as_mut(),
                        segment,
                    ));
                }
            }
            done += segment;
        }
        TrainingReport {
            policy: String::new(), // overwritten by the caller
            rounds,
        }
    }
}

/// The result of [`Runner::run_observed`]: the training report plus
/// the virtual-time trace and the metrics snapshot collected alongside
/// it. `report` is bit-for-bit what the unobserved run produces.
#[derive(Debug, Clone)]
pub struct ObservedRun {
    /// The training report, identical to [`Runner::run`]'s.
    pub report: TrainingReport,
    /// The virtual-time trace, oldest first (empty if the ring
    /// capacity was 0; earliest records dropped if it overflowed).
    pub records: Vec<TraceRecord>,
    /// Counters, gauges and histograms folded from the full event
    /// stream (never dropped, regardless of ring capacity).
    pub metrics: MetricsSnapshot,
    /// Per-phase **host** seconds (wall-clock attribution). Best
    /// effort and machine-dependent; never serialized into run
    /// artifacts or hashed into `RunKey`s.
    pub host_phases: PhaseTotals,
    /// The host-time phase spans (ring-bounded, close order) — the
    /// Chrome host lane of `tifl trace --host`.
    pub host_spans: Vec<HostSpan>,
}

/// A fully self-contained run description for `tifl run --spec`: an
/// experiment, a couple of common scalar overrides, and a [`RunSpec`].
///
/// ```json
/// {
///   "experiment": { ... an ExperimentConfig ... },
///   "rounds": 100,
///   "spec": { "selection": { "Adaptive": { "config": null } },
///             "local": { "FedProx": { "mu": 0.01 } } }
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunRequest {
    /// The experiment to run (any JSON an `ExperimentConfig` parses
    /// from; `tifl init` writes a template).
    pub experiment: ExperimentConfig,
    /// Override the experiment's round count.
    #[serde(default)]
    pub rounds: Option<u64>,
    /// Override the experiment's root seed.
    #[serde(default)]
    pub seed: Option<u64>,
    /// Override the experiment's clients-per-round `|C|`.
    #[serde(default)]
    pub clients_per_round: Option<usize>,
    /// The run to execute (defaults to vanilla/WaitAll/FedAvg).
    #[serde(default)]
    pub spec: RunSpec,
}

impl RunRequest {
    /// The experiment with the scalar overrides applied.
    #[must_use]
    pub fn experiment(&self) -> ExperimentConfig {
        let mut exp = self.experiment.clone();
        if let Some(rounds) = self.rounds {
            exp.rounds = rounds;
        }
        if let Some(seed) = self.seed {
            exp.seed = seed;
        }
        if let Some(c) = self.clients_per_round {
            exp.clients_per_round = c;
        }
        exp
    }

    /// Execute the request.
    #[must_use]
    pub fn run(&self) -> TrainingReport {
        let exp = self.experiment();
        let mut runner = Runner::with_spec(&exp, self.spec.clone());
        runner.run()
    }

    /// Execute the request observed: same report, plus the
    /// virtual-time trace (up to `ring_capacity` records) and a
    /// metrics snapshot. See [`Runner::run_observed`].
    #[must_use]
    pub fn run_observed(&self, ring_capacity: usize) -> ObservedRun {
        let exp = self.experiment();
        let mut runner = Runner::with_spec(&exp, self.spec.clone());
        runner.run_observed(ring_capacity)
    }

    /// As [`RunRequest::run_observed`] with an explicit host clock for
    /// the phase profiler (tests inject a
    /// [`FrozenClock`](tifl_obs::FrozenClock) to pin span structure).
    #[must_use]
    pub fn run_observed_with_clock(
        &self,
        ring_capacity: usize,
        clock: Arc<dyn HostClock>,
    ) -> ObservedRun {
        let exp = self.experiment();
        let mut runner = Runner::with_spec(&exp, self.spec.clone());
        runner.host_clock(clock);
        runner.run_observed(ring_capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentConfig {
        ExperimentConfig::tiny(60)
    }

    #[test]
    fn default_spec_is_vanilla_waitall_fedavg() {
        let spec = RunSpec::default();
        assert_eq!(spec.selection, SelectionStrategy::Vanilla);
        assert_eq!(
            spec.aggregation, None,
            "default inherits the experiment's mode"
        );
        assert_eq!(spec.local, LocalTraining::FedAvg);
        assert_eq!(spec.reprofile_every, None);
        assert_eq!(spec.display_label(), "vanilla");
    }

    #[test]
    fn builder_composes_spec_fields() {
        let cfg = tiny();
        let mut runner = cfg.runner();
        runner
            .adaptive(None)
            .fedprox(0.01)
            .overselect(1.3)
            .reprofile_every(10);
        let spec = runner.spec();
        assert_eq!(spec.selection, SelectionStrategy::Adaptive { config: None });
        assert_eq!(spec.local, LocalTraining::FedProx { mu: 0.01 });
        assert_eq!(
            spec.aggregation,
            Some(AggregationMode::FirstK { factor: 1.3 })
        );
        assert_eq!(spec.reprofile_every, Some(10));
        assert_eq!(
            spec.display_label(),
            "adaptive+fedprox(0.01)+overselect(1.3)+reprofile"
        );
    }

    #[test]
    fn derived_labels_match_legacy_names() {
        let mk = |selection, local, reprofile| RunSpec {
            selection,
            local,
            reprofile_every: reprofile,
            ..RunSpec::default()
        };
        let uniform = SelectionStrategy::TierPolicy {
            policy: Policy::uniform(5),
        };
        assert_eq!(
            mk(uniform.clone(), LocalTraining::FedAvg, None).display_label(),
            "uniform"
        );
        assert_eq!(
            mk(uniform, LocalTraining::FedAvg, Some(8)).display_label(),
            "uniform+reprofile"
        );
        assert_eq!(
            mk(
                SelectionStrategy::Vanilla,
                LocalTraining::FedProx { mu: 0.1 },
                None
            )
            .display_label(),
            "fedprox(0.1)"
        );
        assert_eq!(
            mk(
                SelectionStrategy::Deadline { deadline_sec: 5.0 },
                LocalTraining::FedAvg,
                None
            )
            .display_label(),
            "fedcs"
        );
        // The aggregation axis decorates only when explicitly forced.
        let overselect = RunSpec {
            aggregation: Some(AggregationMode::FirstK { factor: 1.3 }),
            ..RunSpec::default()
        };
        assert_eq!(overselect.display_label(), "overselect(1.3)");
        let tiered_overselect = RunSpec {
            selection: SelectionStrategy::TierPolicy {
                policy: Policy::uniform(5),
            },
            aggregation: Some(AggregationMode::FirstK { factor: 2.0 }),
            ..RunSpec::default()
        };
        assert_eq!(tiered_overselect.display_label(), "uniform+overselect(2)");
        let labelled = RunSpec {
            label: Some("overselect(1.3)".into()),
            ..RunSpec::default()
        };
        assert_eq!(labelled.display_label(), "overselect(1.3)");
    }

    #[test]
    fn comm_builders_compose_the_spec() {
        let cfg = tiny();
        let mut runner = cfg.runner();
        runner
            .quantized_i8()
            .link(LinkModel::LogNormal {
                median_up_bps: 1.0e5,
                median_down_bps: 1.0e6,
                sigma: 0.5,
                rtt_sec: 0.02,
            })
            .hierarchical(100, 2.0e8);
        let comm = runner.spec().comm.expect("comm spec installed");
        assert_eq!(comm.codec, CodecSpec::QuantizeI8);
        assert!(matches!(comm.link, LinkModel::LogNormal { .. }));
        assert_eq!(comm.hierarchy.map(|h| h.fan_out), Some(100));
        assert_eq!(runner.spec().display_label(), "vanilla+i8");
        // Switching the codec keeps the link model.
        runner.topk(0.1);
        let comm = runner.spec().comm.expect("comm spec kept");
        assert_eq!(comm.codec, CodecSpec::TopK { frac: 0.1 });
        assert!(matches!(comm.link, LinkModel::LogNormal { .. }));
        assert_eq!(runner.spec().display_label(), "vanilla+topk(0.1)");
        // Lossless codecs never decorate the label.
        runner.codec(CodecSpec::Identity);
        assert_eq!(runner.spec().display_label(), "vanilla");
        // Composed decorations keep the legacy ordering.
        runner.adaptive(None).fedprox(0.01).quantized_i8();
        assert_eq!(runner.spec().display_label(), "adaptive+fedprox(0.01)+i8");
    }

    #[test]
    fn runner_profiles_once_across_runs() {
        let cfg = tiny();
        let mut runner = cfg.runner();
        assert_eq!(runner.profile_count(), 0);
        let _ = runner.policy(&Policy::uniform(5)).run();
        assert_eq!(runner.profile_count(), 1);
        let _ = runner.policy(&Policy::fast(5)).run();
        let _ = runner.adaptive(None).run();
        let _ = runner.estimate(&Policy::uniform(5));
        assert_eq!(runner.profile_count(), 1, "profile cache must be reused");
    }

    #[test]
    fn shared_profile_seam_skips_reprofiling_and_matches() {
        let cfg = tiny();
        let spec = RunSpec {
            selection: SelectionStrategy::TierPolicy {
                policy: Policy::uniform(5),
            },
            ..RunSpec::default()
        };
        let mut owner = Runner::with_spec(&cfg, spec.clone());
        let baseline = owner.run();
        let profile = owner.shared_profile();
        assert_eq!(owner.profile_count(), 1);

        let mut borrower = Runner::with_shared_profile(&cfg, spec, profile);
        let report = borrower.run();
        assert_eq!(report, baseline, "shared profile must not change results");
        assert_eq!(
            borrower.profile_count(),
            0,
            "installed profiles never count as profiler runs"
        );
        // Changing the comm axis invalidates the installed measurement.
        borrower.quantized_i8();
        let _ = borrower.profile();
        assert_eq!(borrower.profile_count(), 1);
    }

    #[test]
    fn profile_axis_is_the_comm_axis() {
        let mut spec = RunSpec::default();
        assert_eq!(spec.profile_axis(), None);
        spec.comm = Some(CommSpec::default());
        assert_eq!(spec.profile_axis(), Some(CommSpec::default()));
    }

    #[test]
    fn vanilla_runs_never_profile() {
        let cfg = tiny();
        let mut runner = cfg.runner();
        let _ = runner.vanilla().run();
        let _ = runner.fedprox(0.1).run();
        assert_eq!(runner.profile_count(), 0);
    }

    #[test]
    fn vanilla_tier_policy_degrades_to_vanilla() {
        let cfg = tiny();
        let a = cfg.runner().policy(&Policy::vanilla()).run();
        let b = cfg.runner().vanilla().run();
        assert_eq!(a, b);
        assert_eq!(a.policy, "vanilla");
    }

    #[test]
    fn sparse_spec_inherits_experiment_aggregation() {
        // An experiment configured for over-selection keeps it when the
        // spec does not name an aggregation mode — and its label stays
        // undecorated, exactly like the legacy `run_policy` behaviour.
        let mut cfg = tiny();
        cfg.aggregation = AggregationMode::FirstK { factor: 1.5 };
        let report = cfg.runner().vanilla().run();
        assert_eq!(report.policy, "vanilla");
        // tiny has |C| = 2, so FirstK(1.5) asks ceil(3) = 3 per round.
        assert!(report.rounds.iter().all(|r| r.selected.len() == 3));
        assert!(report.rounds.iter().all(|r| r.aggregated.len() == 2));
        // Forcing WaitAll from the spec overrides the experiment.
        let waitall = cfg.runner().aggregation(AggregationMode::WaitAll).run();
        assert!(waitall.rounds.iter().all(|r| r.selected.len() == 2));
    }

    #[test]
    #[should_panic(expected = "re-profiling requires a tiered policy")]
    fn reprofiling_rejects_vanilla() {
        let cfg = tiny();
        let _ = cfg.runner().vanilla().reprofile_every(5).run();
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec = RunSpec {
            selection: SelectionStrategy::TierPolicy {
                policy: Policy::random5(5),
            },
            aggregation: Some(AggregationMode::FirstK { factor: 1.3 }),
            local: LocalTraining::FedProx { mu: 0.05 },
            reprofile_every: Some(25),
            label: Some("combo".into()),
            backend: ExecBackend::EventDriven { threads: 2 },
            comm: Some(CommSpec {
                codec: CodecSpec::TopK { frac: 0.25 },
                link: LinkModel::Uniform {
                    up_bps: 1.0e5,
                    down_bps: 1.0e6,
                    rtt_sec: 0.01,
                },
                hierarchy: None,
            }),
        };
        let json = serde_json::to_string_pretty(&spec).expect("serializes");
        let back: RunSpec = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, spec);
    }

    #[test]
    fn backend_knob_defaults_to_lockstep_and_composes() {
        let spec = RunSpec::default();
        assert_eq!(spec.backend, ExecBackend::Lockstep);
        let cfg = tiny();
        let mut runner = cfg.runner();
        runner.event_driven(3).fedprox(0.1);
        assert_eq!(
            runner.spec().backend,
            ExecBackend::EventDriven { threads: 3 }
        );
        assert_eq!(
            runner.spec().display_label(),
            "fedprox(0.1)",
            "the backend never decorates the label (results are backend-invariant)"
        );
        runner.lockstep();
        assert_eq!(runner.spec().backend, ExecBackend::Lockstep);
    }

    #[test]
    fn async_aggregation_implies_event_driven() {
        let cfg = tiny();
        let mut runner = cfg.runner();
        runner.async_aggregation(2);
        assert_eq!(
            runner.spec().aggregation,
            Some(AggregationMode::Async { max_staleness: 2 })
        );
        assert_eq!(
            runner.spec().backend,
            ExecBackend::EventDriven { threads: 0 }
        );
        assert_eq!(runner.spec().display_label(), "async(2)");
        // An explicitly chosen event-driven thread count is kept.
        let mut runner = cfg.runner();
        runner.event_driven(2).async_aggregation(1);
        assert_eq!(
            runner.spec().backend,
            ExecBackend::EventDriven { threads: 2 }
        );
        assert_eq!(
            runner.adaptive(None).spec().display_label(),
            "adaptive+async(1)"
        );
    }

    #[test]
    #[should_panic(expected = "requires the event-driven backend")]
    fn async_on_lockstep_is_rejected() {
        let cfg = tiny();
        let mut runner = cfg.runner();
        runner
            .aggregation(AggregationMode::Async { max_staleness: 1 })
            .lockstep();
        let _ = runner.run();
    }

    #[test]
    fn sparse_spec_json_uses_defaults() {
        let spec: RunSpec = serde_json::from_str("{}").expect("empty spec parses");
        assert_eq!(spec, RunSpec::default());
        let spec: RunSpec =
            serde_json::from_str(r#"{"selection": {"Adaptive": {"config": null}}}"#)
                .expect("partial spec parses");
        assert_eq!(spec.selection, SelectionStrategy::Adaptive { config: None });
        assert_eq!(spec.aggregation, None);
    }

    #[test]
    fn run_request_applies_overrides_and_runs() {
        let request = RunRequest {
            experiment: tiny(),
            rounds: Some(4),
            seed: Some(9),
            clients_per_round: None,
            spec: RunSpec::default(),
        };
        let json = serde_json::to_string(&request).expect("serializes");
        let back: RunRequest = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, request);
        let report = back.run();
        assert_eq!(report.rounds.len(), 4);
        assert_eq!(report.policy, "vanilla");
        assert_eq!(back.experiment().seed, 9);
    }
}
