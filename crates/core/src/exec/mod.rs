//! The round execution engine: *how* runs execute, independently of
//! *what* they run.
//!
//! The lockstep loop in `tifl_fl::Session` executes every selected
//! client inline inside a synchronous round barrier — fine for paper
//! topologies (50 clients, 5 per round), hopeless at production scale.
//! This module family replaces the *mechanism* while preserving the
//! *semantics* bit for bit:
//!
//! * [`engine`] — a virtual-time discrete-event engine that unifies the
//!   simulator's clock/event/latency/dropout/drift models behind one
//!   priority-queue scheduler ([`tifl_sim::event::EventQueue`]), with
//!   real cancellation of in-flight stragglers and a staleness-aware
//!   asynchronous aggregation mode;
//! * [`executor`] — a shared-queue parallel client executor (built on
//!   the vendored `rayon` scope) that trains clients concurrently and
//!   streams each update back the moment it finishes;
//! * [`streaming`] — the ordered-merge buffer that re-serialises
//!   out-of-order completions into the canonical aggregation order, so
//!   the streaming fold ([`tifl_fl::StreamingFold`]) reproduces batch
//!   FedAvg exactly for *any* thread count.
//!
//! Pick the mechanism per run through [`ExecBackend`]:
//!
//! ```no_run
//! use tifl_core::experiment::ExperimentConfig;
//! use tifl_core::runner::Experiment;
//!
//! let cfg = ExperimentConfig::cifar10_resource_het(42);
//! // Identical report to the default lockstep backend — just faster.
//! let report = cfg.runner().adaptive(None).event_driven(4).run();
//! println!("{}: {:.3}", report.policy, report.final_accuracy());
//! ```

pub mod engine;
pub mod executor;
pub mod streaming;

pub use engine::EventEngine;
pub use executor::{ClientExecutor, TrainContext};
pub use streaming::OrderedMerge;

use serde::{Deserialize, Serialize};

/// Which execution mechanism a run uses. The backend never changes a
/// run's results — only its wall-clock speed, memory footprint, and
/// which aggregation modes are expressible
/// ([`Async`](tifl_fl::session::AggregationMode::Async) needs
/// [`EventDriven`](ExecBackend::EventDriven)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ExecBackend {
    /// The legacy synchronous round loop: plan, train every contributor
    /// through a parallel iterator, aggregate in one batch. Exact
    /// historical behaviour; round memory is O(|selected| × model).
    #[default]
    Lockstep,
    /// The discrete-event engine: contributors train on a pool of
    /// worker threads, updates fold into the global model as they
    /// complete (round memory O(model + reorder window)), evaluation
    /// overlaps the next round's training, and over-selection cancels
    /// in-flight stragglers at their virtual deadline. Bit-for-bit
    /// equal to [`Lockstep`](ExecBackend::Lockstep) for any `threads`.
    EventDriven {
        /// Worker threads training clients (0 = machine default, capped
        /// like the rayon pool).
        threads: usize,
    },
}

impl ExecBackend {
    /// The worker-thread count this backend implies (lockstep reports
    /// the ambient rayon parallelism of its `par_iter`).
    #[must_use]
    pub fn threads(&self) -> usize {
        match *self {
            ExecBackend::Lockstep | ExecBackend::EventDriven { threads: 0 } => {
                rayon::current_num_threads()
            }
            ExecBackend::EventDriven { threads } => threads,
        }
    }

    /// Short display label (`lockstep` / `event(4)`).
    #[must_use]
    pub fn label(&self) -> String {
        match *self {
            ExecBackend::Lockstep => "lockstep".to_string(),
            ExecBackend::EventDriven { threads: 0 } => "event".to_string(),
            ExecBackend::EventDriven { threads } => format!("event({threads})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_backend_is_lockstep() {
        assert_eq!(ExecBackend::default(), ExecBackend::Lockstep);
    }

    #[test]
    fn backend_round_trips_through_json() {
        for backend in [
            ExecBackend::Lockstep,
            ExecBackend::EventDriven { threads: 0 },
            ExecBackend::EventDriven { threads: 4 },
        ] {
            let json = serde_json::to_string(&backend).expect("serializes");
            let back: ExecBackend = serde_json::from_str(&json).expect("parses");
            assert_eq!(back, backend);
        }
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(ExecBackend::Lockstep.label(), "lockstep");
        assert_eq!(ExecBackend::EventDriven { threads: 4 }.label(), "event(4)");
        assert_eq!(ExecBackend::EventDriven { threads: 0 }.label(), "event");
    }

    #[test]
    fn explicit_thread_counts_pass_through() {
        assert_eq!(ExecBackend::EventDriven { threads: 3 }.threads(), 3);
        assert!(ExecBackend::Lockstep.threads() >= 1);
        assert!(ExecBackend::EventDriven { threads: 0 }.threads() >= 1);
    }
}
