//! Re-serialising out-of-order completions.
//!
//! Parallel workers finish clients in wall-clock order, the virtual
//! event queue delivers completions in virtual-time order — but FedAvg
//! folds must happen in the *canonical aggregation order* of the round
//! plan, or the floating-point sums drift from the lockstep backend
//! (addition is commutative but not associative). [`OrderedMerge`] is
//! the small reorder buffer between the two: completions are pushed
//! with their canonical slot index, and the in-order prefix is released
//! the moment it becomes contiguous.
//!
//! Memory: the buffer holds only updates that arrived *ahead* of a
//! straggling predecessor. Expected occupancy is the reorder window of
//! the completion order vs the canonical order (small — under
//! over-selection the two orders even coincide); the worst case (exact
//! reverse arrival) is the in-flight count, i.e. never worse than the
//! lockstep backend's full-round buffer.

use std::collections::BTreeMap;

/// Reorder buffer releasing values in slot order (0, 1, 2, …).
#[derive(Debug)]
pub struct OrderedMerge<T> {
    pending: BTreeMap<usize, T>,
    next: usize,
}

impl<T> Default for OrderedMerge<T> {
    fn default() -> Self {
        Self {
            pending: BTreeMap::new(),
            next: 0,
        }
    }
}

impl<T> OrderedMerge<T> {
    /// An empty buffer expecting slot 0 first.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Accept the value for `slot` and release every contiguously
    /// available value in canonical order through `sink`.
    ///
    /// # Panics
    /// Panics if `slot` was already pushed or already released.
    pub fn push(&mut self, slot: usize, value: T, mut sink: impl FnMut(T)) {
        assert!(slot >= self.next, "slot {slot} already released");
        let clash = self.pending.insert(slot, value);
        assert!(clash.is_none(), "slot {slot} pushed twice");
        while let Some(value) = self.pending.remove(&self.next) {
            self.next += 1;
            sink(value);
        }
    }

    /// Values buffered waiting for a straggling predecessor.
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.pending.len()
    }

    /// Next canonical slot to be released.
    #[must_use]
    pub fn released(&self) -> usize {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(order: &[usize]) -> (Vec<usize>, usize) {
        let mut merge = OrderedMerge::new();
        let mut out = Vec::new();
        let mut peak = 0;
        for &slot in order {
            merge.push(slot, slot, |v| out.push(v));
            peak = peak.max(merge.buffered());
        }
        (out, peak)
    }

    #[test]
    fn in_order_pushes_release_immediately() {
        let (out, peak) = run(&[0, 1, 2, 3]);
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert_eq!(peak, 0, "no buffering when arrival order is canonical");
    }

    #[test]
    fn out_of_order_pushes_release_canonically() {
        let (out, peak) = run(&[2, 0, 3, 1]);
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert!(peak <= 2);
    }

    #[test]
    fn reverse_order_buffers_all_but_one() {
        let (out, peak) = run(&[3, 2, 1, 0]);
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert_eq!(peak, 3, "worst case: everyone waits for slot 0");
    }

    #[test]
    #[should_panic(expected = "pushed twice")]
    fn duplicate_slots_are_rejected() {
        let mut merge = OrderedMerge::new();
        merge.push(1, (), |()| {});
        merge.push(1, (), |()| {});
    }

    #[test]
    #[should_panic(expected = "already released")]
    fn released_slots_are_rejected() {
        let mut merge = OrderedMerge::new();
        merge.push(0, (), |()| {});
        merge.push(0, (), |()| {});
    }
}
