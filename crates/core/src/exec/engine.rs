//! The virtual-time discrete-event round engine.
//!
//! One priority-queue scheduler ([`EventQueue`]) unifies everything the
//! simulator knows about time — response latencies, dropouts
//! (timeouts), drift — with the execution machinery: client training
//! runs on the [`ClientExecutor`] worker pool, updates fold into the
//! global model as they complete ([`StreamingFold`] through an
//! [`OrderedMerge`]), and global-model evaluation is deferred onto the
//! same pool so it overlaps the next round's training.
//!
//! # Equivalence contract
//!
//! For the synchronous aggregation modes (`WaitAll`, `FirstK`) the
//! engine consumes the *same* [`RoundPlan`](tifl_fl::session::RoundPlan)s, trains the *same*
//! contributors with the *same* per-client RNG streams, and folds the
//! weighted mean in the *same* canonical order as the lockstep loop —
//! so its [`TrainingReport`]s and final weights are bit-for-bit equal
//! to `Session::run` for **any** worker-thread count. The worker count
//! changes wall-clock time and nothing else.
//!
//! # What only this engine can do
//!
//! * **Straggler cancellation** — under `FirstK` over-selection the
//!   round ends at the `|C|`-th completion; the engine cancels the
//!   pending completion events of every in-flight straggler at that
//!   virtual deadline ([`EventQueue::cancel`]) and never trains them.
//!   The recorded [`RoundTimeline`]s show them as
//!   [`tifl_fl::timeline::TimelineEvent::Cancelled`].
//! * **Asynchronous aggregation** — [`AggregationMode::Async`] keeps
//!   `|C|` clients in flight with no round barrier at all: each arrival
//!   folds into the global model damped by its staleness, and a
//!   replacement dispatches immediately (FedAsync-style; see
//!   [`ASYNC_BASE_MIX`]).

use crate::exec::executor::{ClientExecutor, TaskResult, TrainContext, WorkQueue};
use crate::exec::streaming::OrderedMerge;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::mpsc::Receiver;
use std::sync::Arc;
use tifl_fl::selector::ClientSelector;
use tifl_fl::session::AggregationMode;
use tifl_fl::timeline::RoundTimeline;
use tifl_fl::{RoundReport, Session, StreamingFold, TrainingReport};
use tifl_obs::{Phase, TraceEvent};
use tifl_sim::event::EventQueue;

/// Base mixing rate of the asynchronous fold: a fresh update moves the
/// global model by `ASYNC_BASE_MIX / (1 + staleness)` of the distance
/// to the client's weights — the polynomial staleness damping of
/// FedAsync (Xie et al.), with α = 0.5.
pub const ASYNC_BASE_MIX: f32 = 0.5;

/// Deferred-evaluation results waiting to be patched into reports.
type EvalPatch = (usize, f64, f32);

/// The event-driven execution engine. Create one per run (or per
/// re-profiling segment); it carries no model state of its own — the
/// session stays the single source of truth.
pub struct EventEngine {
    threads: usize,
    record_timelines: bool,
    timelines: Vec<RoundTimeline>,
}

impl EventEngine {
    /// An engine with `threads` training workers (0 = machine default).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        Self {
            threads,
            record_timelines: false,
            timelines: Vec::new(),
        }
    }

    /// Record a [`RoundTimeline`] per executed round (synchronous modes
    /// only; the asynchronous mode has no per-round trace). Off by
    /// default — traces cost memory proportional to `|selected|·rounds`.
    pub fn record_timelines(&mut self, on: bool) -> &mut Self {
        self.record_timelines = on;
        self
    }

    /// The per-round event traces recorded so far (empty unless
    /// [`EventEngine::record_timelines`] was enabled).
    #[must_use]
    pub fn timelines(&self) -> &[RoundTimeline] {
        &self.timelines
    }

    /// Run the session's remaining configured rounds and return the
    /// full report (the engine counterpart of `Session::run`).
    pub fn run(
        &mut self,
        session: &mut Session,
        selector: &mut dyn ClientSelector,
    ) -> TrainingReport {
        let remaining = session.config().rounds - session.rounds_done();
        let rounds = self.run_rounds(session, selector, remaining);
        TrainingReport {
            policy: selector.name(),
            rounds,
        }
    }

    /// Execute `rounds` rounds (or, under [`AggregationMode::Async`],
    /// `rounds` aggregation steps) and return their reports.
    pub fn run_rounds(
        &mut self,
        session: &mut Session,
        selector: &mut dyn ClientSelector,
        rounds: u64,
    ) -> Vec<RoundReport> {
        match session.config().aggregation {
            AggregationMode::Async { max_staleness } => {
                self.run_async(session, selector, rounds, max_staleness)
            }
            AggregationMode::WaitAll | AggregationMode::FirstK { .. } => {
                self.run_sync(session, selector, rounds)
            }
        }
    }

    // -- synchronous rounds, streamed -------------------------------------

    fn run_sync(
        &mut self,
        session: &mut Session,
        selector: &mut dyn ClientSelector,
        rounds: u64,
    ) -> Vec<RoundReport> {
        let ctx = TrainContext::of(session);
        let executor = ClientExecutor::new(self.threads);
        let comm = session.config().comm;
        let (reports, timelines) = executor.run(&ctx, |queue, results| {
            let mut reports: Vec<RoundReport> = Vec::with_capacity(rounds as usize);
            let mut timelines = Vec::new();
            let mut evals_pending = 0usize;
            let mut eval_patches: Vec<EvalPatch> = Vec::new();
            // Reused across rounds; with the session's pooled fold
            // accumulator and encode scratch, a steady-state round
            // allocates only its dispatch snapshot.
            let mut weights: Vec<f32> = Vec::new();
            for _ in 0..rounds {
                let t_plan = session.host_begin();
                let plan = session.plan_round(selector);
                session.host_end(Phase::Plan, plan.round, t_plan);
                if self.record_timelines {
                    let first_k =
                        matches!(session.config().aggregation, AggregationMode::FirstK { .. });
                    timelines.push(RoundTimeline::from_plan(
                        &plan,
                        first_k,
                        session.config().tmax_sec,
                    ));
                }

                // The fold's total weight is known before any client
                // finishes — contributors and their sample counts come
                // from the plan alone.
                weights.clear();
                weights.extend(plan.contributors.iter().map(|&c| ctx.samples(c) as f32));
                let mut fold = StreamingFold::with_acc(session.take_fold_acc(), &weights);
                let global = Arc::new(session.global_params().clone());
                // Host attribution mirrors the lockstep loop's span
                // structure (Plan, Train, Fold per round); here the
                // Train span covers dispatch through the streamed
                // drain (training and incremental folds overlap), and
                // the Fold span the final resolve — durations shift
                // between the two, the span sequence does not.
                let t_train = session.host_begin();
                for (slot, &c) in plan.contributors.iter().enumerate() {
                    queue.submit_train(slot as u64, c, plan.round, Arc::clone(&global));
                }

                // Stream: fold each update the moment its canonical
                // predecessor has been folded; collect any finished
                // deferred evaluations that arrive in between. With a
                // comm spec active, each released update encodes (with
                // error-feedback compensation) and folds from its wire
                // form — one push can release and encode a whole batch
                // of stashed out-of-order arrivals, all on the session's
                // scratch buffers.
                let mut merge = OrderedMerge::new();
                while fold.folded() < fold.expected() {
                    match results.recv().expect("workers outlive the round") {
                        TaskResult::Update { tag, update } => {
                            merge.push(tag as usize, update, |u| match comm {
                                // Identity's encoded fold is bitwise the
                                // plain fold (pinned in tifl_fl tests) —
                                // skip the per-update model clone.
                                None => fold.fold(&u),
                                Some(spec) if spec.codec == tifl_comm::CodecSpec::Identity => {
                                    fold.fold(&u);
                                }
                                Some(spec) => {
                                    let (feedback, scratch) = session.codec_state_mut();
                                    fold.fold_compensated(
                                        &spec.codec,
                                        &u,
                                        &global,
                                        feedback,
                                        scratch,
                                    );
                                }
                            });
                        }
                        TaskResult::Eval {
                            report_index,
                            accuracy,
                            loss,
                        } => {
                            evals_pending -= 1;
                            eval_patches.push((report_index, accuracy, loss));
                        }
                    }
                }

                session.host_end(Phase::Train, plan.round, t_train);

                let round = plan.round;
                let t_fold = session.host_begin();
                let new_global = if comm.is_some() {
                    fold.finish_against(&global)
                } else {
                    fold.finish()
                };
                session.host_end(Phase::Fold, round, t_fold);
                let report = session.finish_round(plan, new_global, selector, false);
                if session.is_eval_round(round) {
                    evals_pending += 1;
                    queue.submit_eval(reports.len(), Arc::new(session.global_params().clone()));
                }
                reports.push(report);
            }

            while evals_pending > 0 {
                match results.recv().expect("workers outlive the run") {
                    TaskResult::Eval {
                        report_index,
                        accuracy,
                        loss,
                    } => {
                        evals_pending -= 1;
                        eval_patches.push((report_index, accuracy, loss));
                    }
                    TaskResult::Update { .. } => {
                        // tifl-lint: allow(panic-in-library) — invariant panic: the lockstep loop drains every update it spawned before looking for round ends
                        unreachable!("every round drains its own updates")
                    }
                }
            }
            for (i, accuracy, loss) in eval_patches {
                // The evaluation itself ran on a pool worker; the host
                // span marks where its deferred result lands, keeping
                // one Eval span per eval round on every backend (the
                // duration is the patch cost, not the worker's).
                let t_eval = session.host_begin();
                reports[i].accuracy = Some(accuracy);
                reports[i].loss = Some(loss);
                session.host_end(Phase::Eval, reports[i].round, t_eval);
            }
            (reports, timelines)
        });
        self.timelines.extend(timelines);
        reports
    }

    // -- asynchronous aggregation ------------------------------------------

    /// FedAsync-style staleness-aware aggregation: `|C|` clients in
    /// flight, one aggregation (= one report) per arriving update, a
    /// replacement dispatched immediately after each event. Updates
    /// staler than `max_staleness` model versions are discarded (their
    /// report has an empty `aggregated`); non-responders time out after
    /// `tmax_sec` and are replaced without consuming a step.
    ///
    /// Selector feedback (`monitored_groups`/`observe`) is not driven in
    /// this mode — there is no synchronous point to evaluate at — so
    /// credit-based adaptive selection degrades to its initial
    /// probabilities.
    ///
    /// # Panics
    /// Panics (rather than spinning on virtual time forever) when
    /// `10 · |C|` consecutive dispatches time out — a cluster where no
    /// client ever responds within `tmax_sec` cannot make progress.
    fn run_async(
        &mut self,
        session: &mut Session,
        selector: &mut dyn ClientSelector,
        steps: u64,
        max_staleness: u64,
    ) -> Vec<RoundReport> {
        let ctx = TrainContext::of(session);
        let executor = ClientExecutor::new(self.threads);
        let in_flight_target = session.config().clients_per_round;
        let tmax = session.config().tmax_sec;
        let comm = session.config().comm;

        executor.run(&ctx, |queue, results| {
            let mut events: EventQueue<AsyncEvent> = EventQueue::new();
            let mut reports: Vec<RoundReport> = Vec::with_capacity(steps as usize);
            let mut stash: BTreeMap<u64, tifl_fl::ClientUpdate> = BTreeMap::new();
            // Dispatch seqs whose arrival was judged stale: their
            // (already-trained) updates are dropped on receipt instead
            // of accumulating in the stash.
            let mut discarded: BTreeSet<u64> = BTreeSet::new();
            let mut evals_pending = 0usize;
            let mut eval_patches: Vec<EvalPatch> = Vec::new();
            let mut next_seq: u64 = 0;
            let mut version: u64 = 0;
            let mut consecutive_timeouts = 0usize;

            let dispatch = |client: usize,
                            session: &Session,
                            version: u64,
                            next_seq: &mut u64,
                            events: &mut EventQueue<AsyncEvent>,
                            queue: &WorkQueue<'_, '_>| {
                let seq = *next_seq;
                *next_seq += 1;
                let now = session.now();
                let latency = session
                    .cluster()
                    .response(client, seq, &session.task_for(client))
                    .filter(|&l| l <= tmax);
                match latency {
                    Some(l) => {
                        events.schedule(
                            now + l,
                            AsyncEvent::Arrival {
                                client,
                                version,
                                seq,
                                dispatched_at: now,
                            },
                        );
                        let global = Arc::new(session.global_params().clone());
                        queue.submit_train(seq, client, version, global);
                    }
                    None => {
                        events.schedule(now + tmax, AsyncEvent::Timeout);
                    }
                }
            };

            // Prime the pipeline: `|C|` clients in flight at t = 0.
            for client in selector.select(0, in_flight_target) {
                dispatch(client, session, version, &mut next_seq, &mut events, queue);
            }

            while (reports.len() as u64) < steps {
                let event = events.pop().expect("clients always in flight");
                session.advance_time_to(event.time);
                match event.payload {
                    AsyncEvent::Timeout => {
                        // Replace the dead client; no aggregation step.
                        session.trace_event(event.time, TraceEvent::AsyncTimeout);
                        consecutive_timeouts += 1;
                        assert!(
                            consecutive_timeouts <= 10 * in_flight_target,
                            "{consecutive_timeouts} consecutive timeouts: no client \
                             responds within tmax_sec, asynchronous run cannot progress"
                        );
                        let next = pick_one(selector, next_seq);
                        dispatch(next, session, version, &mut next_seq, &mut events, queue);
                    }
                    AsyncEvent::Arrival {
                        client,
                        version: dispatched_version,
                        seq,
                        dispatched_at,
                    } => {
                        consecutive_timeouts = 0;
                        let staleness = version - dispatched_version;
                        let fresh = staleness <= max_staleness;
                        session.trace_event(
                            event.time,
                            TraceEvent::AsyncArrival {
                                client: client as u32,
                                staleness,
                                fresh,
                            },
                        );
                        if fresh {
                            let t_train = session.host_begin();
                            let update = take_update(
                                seq,
                                &mut stash,
                                &mut discarded,
                                results,
                                &mut evals_pending,
                                &mut eval_patches,
                            );
                            session.host_end(Phase::Train, session.rounds_done(), t_train);
                            // With a codec active the server only ever
                            // sees the encoded upload: round-trip the
                            // update through the wire format (with
                            // error-feedback compensation, on pooled
                            // buffers). Sparse deltas rebase against the
                            // current global (the staleness damping
                            // already mixes toward it).
                            let params = match comm {
                                None => update.params,
                                Some(spec) if spec.codec == tifl_comm::CodecSpec::Identity => {
                                    update.params
                                }
                                Some(spec) => session.roundtrip_through_codec(&spec.codec, &update),
                            };
                            let beta = ASYNC_BASE_MIX / (1.0 + staleness as f32);
                            let t_fold = session.host_begin();
                            session.mix_global(beta, &params);
                            session.recycle_dense(params);
                            session.host_end(Phase::Fold, session.rounds_done(), t_fold);
                            version += 1;
                        } else if stash.remove(&seq).is_none() {
                            // The stale update may not have been
                            // received yet — drop it on arrival.
                            discarded.insert(seq);
                        }

                        let round = session.rounds_done();
                        if session.is_eval_round(round) {
                            evals_pending += 1;
                            queue.submit_eval(
                                reports.len(),
                                Arc::new(session.global_params().clone()),
                            );
                        }
                        session.mark_round_done();
                        let task = session.task_for(client);
                        reports.push(RoundReport {
                            round,
                            time: session.now(),
                            latency: event.time - dispatched_at,
                            selected: vec![client],
                            aggregated: if fresh { vec![client] } else { Vec::new() },
                            accuracy: None,
                            loss: None,
                            // One model down, one (encoded) update up per
                            // dispatch — stale arrivals still crossed the
                            // wire, they just get discarded server-side.
                            bytes_down: task.update_bytes,
                            bytes_up: task.upload(),
                        });

                        let next = pick_one(selector, next_seq);
                        dispatch(next, session, version, &mut next_seq, &mut events, queue);
                    }
                }
            }

            while evals_pending > 0 {
                match results.recv().expect("workers outlive the run") {
                    TaskResult::Eval {
                        report_index,
                        accuracy,
                        loss,
                    } => {
                        evals_pending -= 1;
                        eval_patches.push((report_index, accuracy, loss));
                    }
                    // Updates still in flight past the horizon are
                    // abandoned, like the stragglers they are.
                    TaskResult::Update { .. } => {}
                }
            }
            for (i, accuracy, loss) in eval_patches {
                let t_eval = session.host_begin();
                reports[i].accuracy = Some(accuracy);
                reports[i].loss = Some(loss);
                session.host_end(Phase::Eval, reports[i].round, t_eval);
            }
            reports
        })
    }
}

/// Events of the asynchronous aggregation loop.
#[derive(Debug, Clone, Copy)]
enum AsyncEvent {
    /// A client's update reaches the aggregator.
    Arrival {
        /// Client id.
        client: usize,
        /// Global model version the client trained against.
        version: u64,
        /// Dispatch sequence number (keys latency jitter, training RNG
        /// and the result channel).
        seq: u64,
        /// Virtual dispatch time.
        dispatched_at: f64,
    },
    /// A client never responded within `tmax_sec` (the dead client is
    /// simply replaced, so the event carries no payload).
    Timeout,
}

/// Select one replacement client, keyed by the dispatch sequence number
/// so every dispatch draws from a fresh, reproducible stream.
fn pick_one(selector: &mut dyn ClientSelector, seq: u64) -> usize {
    let picked = selector.select(seq, 1);
    assert_eq!(
        picked.len(),
        1,
        "selector returned {} clients",
        picked.len()
    );
    picked[0]
}

/// Receive from the results channel until the update tagged `seq` is
/// available, stashing others (they belong to later virtual arrivals)
/// and dropping any whose arrival was already judged stale.
fn take_update(
    seq: u64,
    stash: &mut BTreeMap<u64, tifl_fl::ClientUpdate>,
    discarded: &mut BTreeSet<u64>,
    results: &Receiver<TaskResult>,
    evals_pending: &mut usize,
    eval_patches: &mut Vec<EvalPatch>,
) -> tifl_fl::ClientUpdate {
    loop {
        if let Some(update) = stash.remove(&seq) {
            return update;
        }
        match results.recv().expect("workers outlive the run") {
            TaskResult::Update { tag, update } => {
                if !discarded.remove(&tag) {
                    stash.insert(tag, update);
                }
            }
            TaskResult::Eval {
                report_index,
                accuracy,
                loss,
            } => {
                *evals_pending -= 1;
                eval_patches.push((report_index, accuracy, loss));
            }
        }
    }
}
