//! The parallel client executor.
//!
//! Training a selected client is a pure function of
//! `(seed, client, round, global)` — see `tifl_fl::client::local_train` —
//! so *where* and *when* it runs cannot change its result. This module
//! exploits that: clients train on a pool of worker threads pulling
//! from a shared queue (the vendored `rayon`'s [`rayon::scope`]), and
//! every finished update streams back to the coordinating thread over a
//! channel the moment it completes. Determinism for any thread count is
//! restored downstream by the ordered merge
//! ([`crate::exec::OrderedMerge`]).
//!
//! Global-model evaluation rides the same pool: an evaluation task
//! captures an immutable snapshot of the round's aggregated model, so
//! it can run concurrently with the *next* round's training — the
//! lockstep backend stalls every round on it.

use std::sync::mpsc;
use std::sync::Arc;
use tifl_data::FederatedDataset;
use tifl_fl::client::{self, ClientConfig};
use tifl_fl::{ClientUpdate, Session};
use tifl_nn::models::ModelSpec;
use tifl_tensor::ParamVec;

/// Everything a worker needs to train any client of a session — shared,
/// immutable, and independent of the session's mutable state (global
/// model, clock), which stays with the coordinating thread.
#[derive(Clone)]
pub struct TrainContext {
    /// The federated dataset (shared handle).
    pub data: Arc<FederatedDataset>,
    /// Global model architecture.
    pub model: ModelSpec,
    /// Local-training hyper-parameters.
    pub client: ClientConfig,
    /// The session's root seed (per-client streams derive from it).
    pub seed: u64,
}

impl TrainContext {
    /// Capture the training context of a session.
    #[must_use]
    pub fn of(session: &Session) -> Self {
        Self {
            data: session.data_handle(),
            model: session.config().model,
            client: session.config().client,
            seed: session.config().seed,
        }
    }

    /// Train `client` for `round` against `global` — the same
    /// `tifl_fl::client::train_update` call `Session::train_contributor`
    /// makes, so the two backends cannot drift apart.
    #[must_use]
    pub fn train(&self, client: usize, round: u64, global: &ParamVec) -> ClientUpdate {
        client::train_update(
            &self.model,
            global,
            &self.data,
            &self.client,
            round,
            client,
            self.seed,
        )
    }

    /// Local training-set size of `client` (the FedAvg weight `s_c`),
    /// known without training — the streaming fold needs the round's
    /// total weight up front.
    #[must_use]
    pub fn samples(&self, client: usize) -> usize {
        self.data.clients[client].train.len()
    }

    /// Evaluate `params` on the balanced global test set (bit-for-bit
    /// the session's own evaluation).
    #[must_use]
    pub fn evaluate(&self, params: &ParamVec) -> (f64, f32) {
        let mut model = client::eval_model(&self.model, params);
        let e = model.evaluate(&self.data.global_test.x, &self.data.global_test.y);
        (e.accuracy, e.loss)
    }
}

/// A finished worker task, streamed back to the coordinating thread.
#[derive(Debug)]
pub enum TaskResult {
    /// One client finished local training.
    Update {
        /// Caller-defined identity (the canonical slot in a synchronous
        /// round, the dispatch sequence number in asynchronous mode).
        tag: u64,
        /// The trained update.
        update: ClientUpdate,
    },
    /// One deferred global-model evaluation finished.
    Eval {
        /// Index into the caller's report list.
        report_index: usize,
        /// Global test accuracy.
        accuracy: f64,
        /// Global test loss.
        loss: f32,
    },
}

/// Handle for submitting work from inside [`ClientExecutor::run`].
pub struct WorkQueue<'a, 'scope> {
    scope: &'a rayon::Scope<'scope>,
    ctx: &'scope TrainContext,
    tx: mpsc::Sender<TaskResult>,
}

impl WorkQueue<'_, '_> {
    /// Queue local training of `client` for `round` against the given
    /// global snapshot; the result arrives as [`TaskResult::Update`]
    /// carrying `tag`.
    pub fn submit_train(&self, tag: u64, client: usize, round: u64, global: Arc<ParamVec>) {
        let ctx = self.ctx;
        let tx = self.tx.clone();
        self.scope.spawn(move || {
            let update = ctx.train(client, round, &global);
            // The receiver may already be gone when a run abandons
            // still-in-flight work (asynchronous mode at its horizon).
            let _ = tx.send(TaskResult::Update { tag, update });
        });
    }

    /// Queue evaluation of a global-model snapshot; the result arrives
    /// as [`TaskResult::Eval`] carrying `report_index`.
    pub fn submit_eval(&self, report_index: usize, global: Arc<ParamVec>) {
        let ctx = self.ctx;
        let tx = self.tx.clone();
        self.scope.spawn(move || {
            let (accuracy, loss) = ctx.evaluate(&global);
            let _ = tx.send(TaskResult::Eval {
                report_index,
                accuracy,
                loss,
            });
        });
    }
}

/// A fixed-size worker pool executing client training and evaluation
/// tasks, streaming results as they complete.
pub struct ClientExecutor {
    pool: rayon::ThreadPool,
}

impl ClientExecutor {
    /// A pool of `threads` workers (0 = machine default).
    ///
    /// # Panics
    /// Never in practice; kept for pool-builder signature parity.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("thread pool builds");
        Self { pool }
    }

    /// The worker count in effect.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.pool.current_num_threads()
    }

    /// Run `body` on the calling thread with a live worker pool: `body`
    /// submits tasks through the [`WorkQueue`] and consumes results
    /// from the receiver *while workers execute*. Returns after `body`
    /// and every submitted task finished.
    pub fn run<R>(
        &self,
        ctx: &TrainContext,
        body: impl FnOnce(&WorkQueue<'_, '_>, &mpsc::Receiver<TaskResult>) -> R,
    ) -> R {
        self.pool.install(|| {
            rayon::scope(|scope| {
                let (tx, rx) = mpsc::channel();
                let queue = WorkQueue { scope, ctx, tx };
                body(&queue, &rx)
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tifl_data::partition;
    use tifl_data::synth::{Generator, SynthFamily, SynthSpec};
    use tifl_tensor::seed_rng;

    fn ctx() -> TrainContext {
        let gen = Generator::new(SynthSpec::family(SynthFamily::Mnist), 5);
        let part = partition::iid(4, 30, 10, &mut seed_rng(5));
        let data = FederatedDataset::materialize(&gen, &part, 0.2, 10, 5);
        TrainContext {
            data: Arc::new(data),
            model: ModelSpec::Mlp {
                input: 64,
                hidden: 16,
                classes: 10,
            },
            client: ClientConfig::paper_synthetic(),
            seed: 5,
        }
    }

    #[test]
    fn training_results_are_thread_count_independent() {
        let ctx = ctx();
        let global = Arc::new(ctx.model.build(5).params());
        let run = |threads: usize| {
            let exec = ClientExecutor::new(threads);
            exec.run(&ctx, |queue, rx| {
                for c in 0..4u64 {
                    queue.submit_train(c, c as usize, 0, Arc::clone(&global));
                }
                let mut got: Vec<Option<ClientUpdate>> = vec![None, None, None, None];
                for _ in 0..4 {
                    match rx.recv().expect("4 updates") {
                        TaskResult::Update { tag, update } => got[tag as usize] = Some(update),
                        TaskResult::Eval { .. } => unreachable!("no evals submitted"),
                    }
                }
                got.into_iter()
                    .map(|u| u.expect("all tags seen").params)
                    .collect::<Vec<_>>()
            })
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn evaluation_matches_the_inline_path() {
        let ctx = ctx();
        let params = ctx.model.build(7).params();
        let inline = ctx.evaluate(&params);
        let exec = ClientExecutor::new(2);
        let deferred = exec.run(&ctx, |queue, rx| {
            queue.submit_eval(3, Arc::new(params.clone()));
            match rx.recv().expect("one eval") {
                TaskResult::Eval {
                    report_index,
                    accuracy,
                    loss,
                } => {
                    assert_eq!(report_index, 3);
                    (accuracy, loss)
                }
                TaskResult::Update { .. } => unreachable!("no training submitted"),
            }
        });
        assert_eq!(inline, deferred, "deferred evaluation must be bit-equal");
    }

    #[test]
    fn executor_reports_thread_count() {
        assert_eq!(ClientExecutor::new(3).threads(), 3);
        assert!(ClientExecutor::new(0).threads() >= 1);
    }
}
