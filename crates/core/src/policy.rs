//! Static tier-selection policies (Table 1).
//!
//! A policy is a probability vector over tiers: each round one tier is
//! drawn from it and all `|C|` clients are selected uniformly from that
//! tier. `vanilla` is the special no-tiering baseline (uniform random
//! over the whole pool, Algorithm 1).

use serde::{Deserialize, Serialize};

/// A named static selection policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Policy {
    /// Policy name as it appears in the paper's figures.
    pub name: String,
    /// Per-tier selection probabilities (fastest tier first). Empty for
    /// the vanilla baseline.
    pub probs: Vec<f64>,
}

impl Policy {
    /// Build a custom policy.
    ///
    /// # Panics
    /// Panics if probabilities are negative or do not sum to ~1.
    #[must_use]
    pub fn new(name: impl Into<String>, probs: Vec<f64>) -> Self {
        assert!(probs.iter().all(|&p| p >= 0.0), "negative probability");
        let sum: f64 = probs.iter().sum();
        assert!(
            (sum - 1.0).abs() < 1e-9,
            "probabilities sum to {sum}, expected 1"
        );
        Self {
            name: name.into(),
            probs,
        }
    }

    /// The vanilla baseline: no tiering, uniform random over all clients.
    #[must_use]
    pub fn vanilla() -> Self {
        Self {
            name: "vanilla".into(),
            probs: Vec::new(),
        }
    }

    /// True for the vanilla (non-tiered) baseline.
    #[must_use]
    pub fn is_vanilla(&self) -> bool {
        self.probs.is_empty()
    }

    /// `uniform`: every tier equally likely (`1/m` each).
    #[must_use]
    pub fn uniform(m: usize) -> Self {
        Self::new("uniform", vec![1.0 / m as f64; m])
    }

    /// `fast`: only the fastest tier (Table 1: `1,0,0,0,0`).
    #[must_use]
    pub fn fast(m: usize) -> Self {
        let mut p = vec![0.0; m];
        p[0] = 1.0;
        Self::new("fast", p)
    }

    /// `slow`: only the slowest tier (Table 1: `0,0,0,0,1`).
    #[must_use]
    pub fn slow(m: usize) -> Self {
        let mut p = vec![0.0; m];
        p[m - 1] = 1.0;
        Self::new("slow", p)
    }

    /// `random`: prioritise the fastest tier
    /// (Table 1: `0.7, 0.1, 0.1, 0.05, 0.05` for 5 tiers).
    ///
    /// # Panics
    /// Panics unless `m == 5` (the paper only defines it for 5 tiers).
    #[must_use]
    pub fn random5(m: usize) -> Self {
        assert_eq!(m, 5, "the paper's `random` policy is defined for 5 tiers");
        Self::new("random", vec![0.7, 0.1, 0.1, 0.05, 0.05])
    }

    /// `fast1`/`fast2`/`fast3` (Table 1, MNIST & FMNIST): progressively
    /// de-prioritise the slowest tier — its probability drops from 0.1
    /// (`level = 1`) to 0.05 (`level = 2`) to 0 (`level = 3`), the
    /// remainder split evenly over the other tiers.
    ///
    /// # Panics
    /// Panics unless `m == 5` and `level` is 1..=3.
    #[must_use]
    pub fn fast_level(m: usize, level: u8) -> Self {
        assert_eq!(m, 5, "fast1..3 are defined for 5 tiers");
        let slow_p = match level {
            1 => 0.1,
            2 => 0.05,
            3 => 0.0,
            // tifl-lint: allow(panic-in-library) — documented precondition: callers pass a validated level 1..=3
            _ => panic!("fast level must be 1..=3, got {level}"),
        };
        let other = (1.0 - slow_p) / 4.0;
        let mut p = vec![other; 4];
        p.push(slow_p);
        Self::new(format!("fast{level}"), p)
    }

    /// The CIFAR-10 / FEMNIST policy set of Table 1:
    /// vanilla, slow, uniform, random, fast.
    #[must_use]
    pub fn cifar_set(m: usize) -> Vec<Policy> {
        vec![
            Policy::vanilla(),
            Policy::slow(m),
            Policy::uniform(m),
            Policy::random5(m),
            Policy::fast(m),
        ]
    }

    /// The MNIST / FMNIST policy set of Table 1:
    /// vanilla, uniform, fast1, fast2, fast3.
    #[must_use]
    pub fn mnist_set(m: usize) -> Vec<Policy> {
        vec![
            Policy::vanilla(),
            Policy::uniform(m),
            Policy::fast_level(m, 1),
            Policy::fast_level(m, 2),
            Policy::fast_level(m, 3),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_normalised() {
        for p in Policy::cifar_set(5)
            .iter()
            .chain(Policy::mnist_set(5).iter())
        {
            if !p.is_vanilla() {
                let sum: f64 = p.probs.iter().sum();
                assert!((sum - 1.0).abs() < 1e-9, "{}: sum {sum}", p.name);
            }
        }
    }

    #[test]
    fn vanilla_has_no_tier_probs() {
        assert!(Policy::vanilla().is_vanilla());
        assert!(!Policy::uniform(5).is_vanilla());
    }

    #[test]
    fn fast_and_slow_are_point_masses() {
        assert_eq!(Policy::fast(5).probs, vec![1.0, 0.0, 0.0, 0.0, 0.0]);
        assert_eq!(Policy::slow(5).probs, vec![0.0, 0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn random5_matches_table1() {
        assert_eq!(Policy::random5(5).probs, vec![0.7, 0.1, 0.1, 0.05, 0.05]);
    }

    #[test]
    fn fast_levels_match_table1() {
        assert_eq!(
            Policy::fast_level(5, 1).probs,
            vec![0.225, 0.225, 0.225, 0.225, 0.1]
        );
        assert_eq!(
            Policy::fast_level(5, 2).probs,
            vec![0.2375, 0.2375, 0.2375, 0.2375, 0.05]
        );
        assert_eq!(
            Policy::fast_level(5, 3).probs,
            vec![0.25, 0.25, 0.25, 0.25, 0.0]
        );
    }

    #[test]
    #[should_panic(expected = "sum")]
    fn rejects_unnormalised() {
        let _ = Policy::new("bad", vec![0.5, 0.2]);
    }

    #[test]
    fn policy_sets_have_five_members() {
        assert_eq!(Policy::cifar_set(5).len(), 5);
        assert_eq!(Policy::mnist_set(5).len(), 5);
    }
}
