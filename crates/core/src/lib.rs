//! TiFL core: the paper's contribution.
//!
//! * [`profiler`] — the lightweight latency profiler of §4.2
//!   (`sync_rounds` profiling rounds, `Tmax` timeout, dropout exclusion);
//! * [`tiering`] — grouping clients into `m` tiers by profiled latency;
//! * [`policy`] — the static selection-probability policies of Table 1;
//! * [`scheduler`] — the static straw-man selector (§4.3) and the
//!   adaptive credit-based selector of Algorithm 2 (§4.4);
//! * [`estimator`] — the training-time estimation model of Eq. 6 and the
//!   MAPE metric of Table 2;
//! * [`analysis`] — the straggler-selection probability analysis of
//!   §3.2 (Eqs. 2–5), closed form plus Monte-Carlo check;
//! * [`privacy`] — the differential-privacy amplification accounting of
//!   §4.6;
//! * [`experiment`] — ready-made experiment configurations reproducing
//!   the setups of §5.1, used by the examples and the per-figure bench
//!   binaries;
//! * [`runner`] — the composable run API: a serializable [`RunSpec`]
//!   describing one cell of the §5 evaluation matrix, and the
//!   [`Runner`] that executes it through the one canonical
//!   profile → tier → select → train pipeline (with a profiling cache);
//! * [`exec`] — the round execution engine: a virtual-time
//!   discrete-event scheduler with a parallel streaming client
//!   executor, selectable per run via [`exec::ExecBackend`]
//!   (bit-for-bit equal to the lockstep loop, plus straggler
//!   cancellation and asynchronous staleness-aware aggregation).

#![forbid(unsafe_code)]

pub mod analysis;
pub mod baselines;
pub mod estimator;
pub mod exec;
pub mod experiment;
pub mod policy;
pub mod privacy;
pub mod profiler;
pub mod runner;
pub mod scheduler;
pub mod tiering;

pub use exec::{EventEngine, ExecBackend};
pub use policy::Policy;
pub use profiler::{Profiler, ProfilerConfig};
pub use runner::{
    Experiment, LocalTraining, ObservedRun, RunRequest, RunSpec, Runner, SelectionStrategy,
};
pub use scheduler::{AdaptiveConfig, AdaptiveTierSelector, StaticTierSelector};
pub use tiering::{TierAssignment, TieringConfig};
