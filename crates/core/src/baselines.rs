//! Baselines from the paper's related work (§2), implemented so the
//! bench harness can compare TiFL against what it claims to beat.
//!
//! * [`DeadlineSelector`] — FedCS (Nishio & Yonetani): random candidate
//!   order, but only clients whose *profiled* latency fits a round
//!   deadline are accepted, so slow clients are filtered out up front.
//! * Over-selection (Bonawitz et al.) is a session-level mechanism; see
//!   [`tifl_fl::session::AggregationMode::FirstK`].
//! * FedProx (Li et al.) is a client-side objective change; see
//!   [`tifl_fl::client::ClientConfig::proximal_mu`].

use rand::seq::SliceRandom;
use tifl_fl::selector::ClientSelector;
use tifl_tensor::{seed_rng, split_seed};

/// FedCS-style deadline-based client selection.
///
/// Each round the pool is shuffled and clients are accepted greedily if
/// their estimated response latency is within `deadline_sec`; if fewer
/// than `count` qualify, the fastest remaining clients fill the gap (the
/// round must still reach its quorum).
pub struct DeadlineSelector {
    /// Profiled latency per client (`None` = dropout, never selected).
    latencies: Vec<Option<f64>>,
    deadline_sec: f64,
    seed: u64,
}

impl DeadlineSelector {
    /// Build from profiled latencies (the same profiler output TiFL
    /// tiers from) and a round deadline.
    ///
    /// # Panics
    /// Panics if no client survived profiling or the deadline is not
    /// positive.
    #[must_use]
    pub fn new(latencies: Vec<Option<f64>>, deadline_sec: f64, seed: u64) -> Self {
        assert!(deadline_sec > 0.0, "deadline must be positive");
        assert!(
            latencies.iter().any(Option::is_some),
            "no live clients to select from"
        );
        Self {
            latencies,
            deadline_sec,
            seed,
        }
    }

    /// Clients meeting the deadline.
    #[must_use]
    pub fn eligible(&self) -> Vec<usize> {
        self.latencies
            .iter()
            .enumerate()
            .filter_map(|(c, l)| l.filter(|&l| l <= self.deadline_sec).map(|_| c))
            .collect()
    }
}

impl ClientSelector for DeadlineSelector {
    fn name(&self) -> String {
        "fedcs".to_string()
    }

    fn select(&mut self, round: u64, count: usize) -> Vec<usize> {
        let mut rng = seed_rng(split_seed(self.seed, round));
        let mut eligible = self.eligible();
        eligible.shuffle(&mut rng);
        eligible.truncate(count);

        if eligible.len() < count {
            // Deadline too tight for a quorum: top up with the fastest
            // clients that missed it.
            let mut laggards: Vec<(usize, f64)> = self
                .latencies
                .iter()
                .enumerate()
                .filter_map(|(c, l)| l.filter(|&l| l > self.deadline_sec).map(|l| (c, l)))
                .collect();
            laggards.sort_by(|a, b| a.1.total_cmp(&b.1));
            eligible.extend(
                laggards
                    .into_iter()
                    .map(|(c, _)| c)
                    .take(count - eligible.len()),
            );
        }
        assert!(
            eligible.len() == count,
            "pool too small: {} clients for a round of {count}",
            eligible.len()
        );
        eligible
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn latencies() -> Vec<Option<f64>> {
        // clients 0..6 fast (1-6s), 7..9 slow (50-70s), 10 dead.
        let mut l: Vec<Option<f64>> = (0..7).map(|i| Some(1.0 + i as f64)).collect();
        l.extend([Some(50.0), Some(60.0), Some(70.0), None]);
        l
    }

    #[test]
    fn respects_deadline() {
        let mut s = DeadlineSelector::new(latencies(), 10.0, 0);
        for r in 0..50 {
            let sel = s.select(r, 3);
            assert_eq!(sel.len(), 3);
            assert!(
                sel.iter().all(|&c| c < 7),
                "round {r} selected slow client: {sel:?}"
            );
        }
    }

    #[test]
    fn never_selects_dropouts() {
        let mut s = DeadlineSelector::new(latencies(), 1e9, 1);
        for r in 0..50 {
            assert!(!s.select(r, 5).contains(&10));
        }
    }

    #[test]
    fn tops_up_with_fastest_laggards_when_deadline_too_tight() {
        // Only clients 0 and 1 meet a 2.5s deadline; a round of 4 must
        // include the two fastest laggards (2 and 3).
        let mut s = DeadlineSelector::new(latencies(), 2.5, 2);
        let mut sel = s.select(0, 4);
        sel.sort_unstable();
        assert_eq!(sel, vec![0, 1, 2, 3]);
    }

    #[test]
    fn selection_is_deterministic() {
        let mut a = DeadlineSelector::new(latencies(), 10.0, 3);
        let mut b = DeadlineSelector::new(latencies(), 10.0, 3);
        for r in 0..20 {
            assert_eq!(a.select(r, 3), b.select(r, 3));
        }
    }

    #[test]
    fn eligible_lists_deadline_clients() {
        let s = DeadlineSelector::new(latencies(), 5.5, 4);
        assert_eq!(s.eligible(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "deadline must be positive")]
    fn rejects_bad_deadline() {
        let _ = DeadlineSelector::new(latencies(), 0.0, 0);
    }
}
