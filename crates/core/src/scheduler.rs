//! Tier schedulers: the static straw-man (§4.3) and the adaptive
//! credit-based selector of Algorithm 2 (§4.4).

use crate::policy::Policy;
use crate::tiering::TierAssignment;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use tifl_fl::checkpoint::SelectorState;
use tifl_fl::selector::ClientSelector;
use tifl_tensor::{seed_rng, split_seed};

/// Draw a tier index from a probability vector restricted to tiers with
/// remaining credit. Falls back to renormalising over credited tiers
/// when the sampled tier is exhausted (the paper's `while` loop on
/// Algorithm 2 lines 8–14).
fn draw_credited_tier(probs: &[f64], credits: &[u64], rng: &mut StdRng) -> usize {
    debug_assert_eq!(probs.len(), credits.len());
    let total: f64 = probs
        .iter()
        .zip(credits)
        .filter(|(_, &c)| c > 0)
        .map(|(&p, _)| p)
        .sum();
    assert!(
        total > 0.0,
        "no tier with remaining credits has positive probability"
    );
    let mut u = rng.gen::<f64>() * total;
    for (t, (&p, &c)) in probs.iter().zip(credits).enumerate() {
        if c == 0 {
            continue;
        }
        u -= p;
        if u <= 0.0 {
            return t;
        }
    }
    // Floating-point slack: return the last credited tier.
    probs
        .iter()
        .zip(credits)
        .enumerate()
        .filter(|(_, (_, &c))| c > 0)
        .map(|(t, _)| t)
        .next_back()
        .expect("at least one credited tier")
}

/// Select `count` clients uniformly at random from one tier.
fn select_within_tier(
    assignment: &TierAssignment,
    tier: usize,
    count: usize,
    rng: &mut StdRng,
) -> Vec<usize> {
    let pool = &assignment.tiers[tier].clients;
    assert!(
        count <= pool.len(),
        "tier {tier} has {} clients, cannot select {count}",
        pool.len()
    );
    let mut pool = pool.clone();
    pool.shuffle(rng);
    pool.truncate(count);
    pool
}

// ---------------------------------------------------------------------------
// Static straw-man selector (§4.3)
// ---------------------------------------------------------------------------

/// Static tier selection: each round draw a tier from the policy's fixed
/// probability vector, then `|C|` clients uniformly within it.
pub struct StaticTierSelector {
    assignment: TierAssignment,
    policy: Policy,
    seed: u64,
    /// Tier drawn for each round (diagnostics / tests).
    pub tier_history: Vec<usize>,
}

impl StaticTierSelector {
    /// Build from a tier assignment and a (non-vanilla) policy.
    ///
    /// # Panics
    /// Panics if the policy is vanilla or its length does not match the
    /// number of tiers.
    #[must_use]
    pub fn new(assignment: TierAssignment, policy: Policy, seed: u64) -> Self {
        assert!(
            !policy.is_vanilla(),
            "vanilla policy selects from the whole pool; use RandomSelector"
        );
        assert_eq!(
            policy.probs.len(),
            assignment.num_tiers(),
            "policy has {} tiers, assignment has {}",
            policy.probs.len(),
            assignment.num_tiers()
        );
        Self {
            assignment,
            policy,
            seed,
            tier_history: Vec::new(),
        }
    }

    /// The underlying tier assignment.
    #[must_use]
    pub fn assignment(&self) -> &TierAssignment {
        &self.assignment
    }
}

impl ClientSelector for StaticTierSelector {
    fn name(&self) -> String {
        self.policy.name.clone()
    }

    fn select(&mut self, round: u64, count: usize) -> Vec<usize> {
        let mut rng = seed_rng(split_seed(self.seed, round));
        // Static policies have unbounded credits.
        let credits = vec![u64::MAX; self.policy.probs.len()];
        let tier = draw_credited_tier(&self.policy.probs, &credits, &mut rng);
        self.tier_history.push(tier);
        select_within_tier(&self.assignment, tier, count, &mut rng)
    }
}

// ---------------------------------------------------------------------------
// Adaptive selector (Algorithm 2, §4.4)
// ---------------------------------------------------------------------------

/// Adaptive-selector parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveConfig {
    /// `I`: probabilities are re-evaluated every `I` rounds.
    pub interval: u64,
    /// `Credits_t`: how many rounds each tier may be selected in total.
    /// The paper uses credits to soft-bound the participation of slow
    /// tiers; we default to `2N/m` per tier so total credit capacity
    /// (`2N`) comfortably covers `N` rounds while still capping any
    /// single tier.
    pub credits_per_tier: u64,
    /// Exponent applied to `(1 - accuracy)` in `ChangeProbs`; larger
    /// values react more aggressively to lagging tiers.
    pub gamma: f64,
}

impl AdaptiveConfig {
    /// Defaults for an `N`-round, `m`-tier run.
    #[must_use]
    pub fn for_run(rounds: u64, num_tiers: usize) -> Self {
        Self {
            interval: 10,
            credits_per_tier: (2 * rounds / num_tiers.max(1) as u64).max(1),
            gamma: 2.0,
        }
    }
}

/// Adaptive tier selection (Algorithm 2): per-tier selection
/// probabilities re-weighted every `I` rounds toward tiers with lower
/// test accuracy, bounded by per-tier credits.
pub struct AdaptiveTierSelector {
    assignment: TierAssignment,
    config: AdaptiveConfig,
    seed: u64,
    probs: Vec<f64>,
    credits: Vec<u64>,
    /// Per-tier holdout accuracies keyed by the round after which they
    /// were observed. Sparse: only rounds the algorithm will read are
    /// evaluated (every `I` rounds).
    acc_history: std::collections::BTreeMap<u64, Vec<f64>>,
    current_tier: usize,
    /// Tier drawn for each round (diagnostics / tests).
    pub tier_history: Vec<usize>,
}

impl AdaptiveTierSelector {
    /// Build from a tier assignment.
    #[must_use]
    pub fn new(assignment: TierAssignment, config: AdaptiveConfig, seed: u64) -> Self {
        let m = assignment.num_tiers();
        assert!(m > 0, "empty tier assignment");
        assert!(config.interval > 0, "interval must be positive");
        Self {
            probs: vec![1.0 / m as f64; m],
            credits: vec![config.credits_per_tier; m],
            acc_history: std::collections::BTreeMap::new(),
            current_tier: 0,
            tier_history: Vec::new(),
            assignment,
            config,
            seed,
        }
    }

    /// Current per-tier selection probabilities.
    #[must_use]
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Remaining credits per tier.
    #[must_use]
    pub fn credits(&self) -> &[u64] {
        &self.credits
    }

    /// `ChangeProbs` (Algorithm 2 line 5): re-weight tiers so lower
    /// accuracy earns a higher selection probability,
    /// `P_t ∝ (1 - A_t)^gamma`.
    fn change_probs(&mut self, accs: &[f64]) {
        let weights: Vec<f64> = accs
            .iter()
            .map(|&a| (1.0 - a.clamp(0.0, 1.0)).max(1e-6).powf(self.config.gamma))
            .collect();
        let total: f64 = weights.iter().sum();
        for (p, w) in self.probs.iter_mut().zip(&weights) {
            *p = w / total;
        }
    }
}

impl ClientSelector for AdaptiveTierSelector {
    fn name(&self) -> String {
        "adaptive".to_string()
    }

    fn select(&mut self, round: u64, count: usize) -> Vec<usize> {
        let i = self.config.interval;
        // Algorithm 2 lines 3-7: every I rounds, if the current tier's
        // accuracy stopped improving, redistribute probabilities toward
        // low-accuracy tiers. Observations exist for rounds `r` with
        // `(r + 1) % I == 0` (see `monitored_groups`), so at a selection
        // round `round % I == 0` the latest observation is `round - 1`
        // and the previous one is `round - 1 - I` — the paper's A^r vs
        // A^{r-I} pair.
        if round.is_multiple_of(i) && round > i {
            let cur = self.current_tier;
            let now = self.acc_history.get(&(round - 1));
            let prev = self.acc_history.get(&(round - 1 - i));
            if let (Some(now), Some(prev)) = (now, prev) {
                if now[cur] <= prev[cur] {
                    let accs = now.clone();
                    self.change_probs(&accs);
                }
            }
        }

        // Lines 8-16: draw a credited tier, spend one credit.
        if self.credits.iter().all(|&c| c == 0) {
            // All credits exhausted (only possible when credits_per_tier
            // * m < N): refill so training can finish. The paper leaves
            // this case undefined; refilling preserves the soft-bound
            // semantics for the configured horizon.
            self.credits.fill(self.config.credits_per_tier);
        }
        let mut rng = seed_rng(split_seed(self.seed, round));
        let tier = draw_credited_tier(&self.probs, &self.credits, &mut rng);
        self.credits[tier] -= 1;
        self.current_tier = tier;
        self.tier_history.push(tier);
        select_within_tier(&self.assignment, tier, count, &mut rng)
    }

    fn monitored_groups(&self, round: u64) -> Option<Vec<Vec<usize>>> {
        // Only the rounds the update rule will read: `round - 1` and
        // `round - 1 - I` for selection rounds that are multiples of I.
        (round + 1)
            .is_multiple_of(self.config.interval)
            .then(|| self.assignment.groups())
    }

    fn observe(&mut self, round: u64, group_accuracies: &[f64]) {
        assert_eq!(
            group_accuracies.len(),
            self.assignment.num_tiers(),
            "observed accuracy count does not match tier count"
        );
        self.acc_history.insert(round, group_accuracies.to_vec());
    }

    fn export_state(&self) -> Option<SelectorState> {
        Some(SelectorState {
            probs: self.probs.clone(),
            credits: self.credits.clone(),
            current_tier: self.current_tier,
            acc_history: self
                .acc_history
                .iter()
                .map(|(&r, a)| (r, a.clone()))
                .collect(),
        })
    }

    fn restore_state(&mut self, state: &SelectorState) {
        assert_eq!(
            state.probs.len(),
            self.assignment.num_tiers(),
            "selector state does not match the tier count"
        );
        assert_eq!(state.credits.len(), self.assignment.num_tiers());
        self.probs = state.probs.clone();
        self.credits = state.credits.clone();
        self.current_tier = state.current_tier;
        self.acc_history = state
            .acc_history
            .iter()
            .map(|(r, a)| (*r, a.clone()))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tiering::TieringConfig;

    /// 10 clients in 5 tiers of 2 (client 2i, 2i+1 in tier i).
    fn assignment() -> TierAssignment {
        let latencies: Vec<Option<f64>> = (0..10).map(|i| Some((i / 2) as f64 + 1.0)).collect();
        TierAssignment::from_latencies(&latencies, &TieringConfig::default())
    }

    #[test]
    fn static_fast_only_selects_tier0() {
        let mut s = StaticTierSelector::new(assignment(), Policy::fast(5), 0);
        for r in 0..50 {
            let sel = s.select(r, 2);
            assert!(sel.iter().all(|&c| c < 2), "round {r} selected {sel:?}");
        }
        assert!(s.tier_history.iter().all(|&t| t == 0));
    }

    #[test]
    fn static_slow_only_selects_last_tier() {
        let mut s = StaticTierSelector::new(assignment(), Policy::slow(5), 0);
        let sel = s.select(0, 2);
        assert!(sel.iter().all(|&c| c >= 8), "{sel:?}");
    }

    #[test]
    fn static_uniform_hits_all_tiers() {
        let mut s = StaticTierSelector::new(assignment(), Policy::uniform(5), 1);
        for r in 0..200 {
            let _ = s.select(r, 2);
        }
        for t in 0..5 {
            let n = s.tier_history.iter().filter(|&&x| x == t).count();
            assert!(
                (20..=60).contains(&n),
                "tier {t} selected {n}/200 times under uniform"
            );
        }
    }

    #[test]
    fn static_random5_prefers_fast_tier() {
        let mut s = StaticTierSelector::new(assignment(), Policy::random5(5), 2);
        for r in 0..500 {
            let _ = s.select(r, 2);
        }
        let t0 = s.tier_history.iter().filter(|&&x| x == 0).count();
        assert!(
            (300..=400).contains(&t0),
            "tier 0 selected {t0}/500 times under random (expect ~350)"
        );
    }

    #[test]
    fn all_selected_clients_come_from_one_tier() {
        let mut s = StaticTierSelector::new(assignment(), Policy::uniform(5), 3);
        let a = assignment();
        for r in 0..100 {
            let sel = s.select(r, 2);
            let tiers: Vec<usize> = sel.iter().map(|&c| a.tier_of(c).unwrap()).collect();
            assert!(
                tiers.windows(2).all(|w| w[0] == w[1]),
                "round {r}: {tiers:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "vanilla policy")]
    fn static_rejects_vanilla() {
        let _ = StaticTierSelector::new(assignment(), Policy::vanilla(), 0);
    }

    #[test]
    fn selection_is_deterministic() {
        let mut a = StaticTierSelector::new(assignment(), Policy::uniform(5), 9);
        let mut b = StaticTierSelector::new(assignment(), Policy::uniform(5), 9);
        for r in 0..20 {
            assert_eq!(a.select(r, 2), b.select(r, 2));
        }
    }

    // -- adaptive --------------------------------------------------------

    fn adaptive(credits: u64, interval: u64) -> AdaptiveTierSelector {
        AdaptiveTierSelector::new(
            assignment(),
            AdaptiveConfig {
                interval,
                credits_per_tier: credits,
                gamma: 2.0,
            },
            7,
        )
    }

    #[test]
    fn adaptive_starts_uniform() {
        let s = adaptive(100, 10);
        assert!(s.probs().iter().all(|&p| (p - 0.2).abs() < 1e-12));
        assert_eq!(s.credits(), &[100; 5]);
    }

    #[test]
    fn adaptive_spends_credits() {
        let mut s = adaptive(100, 10);
        for r in 0..10 {
            let _ = s.select(r, 2);
            s.observe(r, &[0.5; 5]);
        }
        let spent: u64 = s.credits().iter().map(|&c| 100 - c).sum();
        assert_eq!(spent, 10);
    }

    #[test]
    fn adaptive_monitors_all_tiers_on_read_rounds() {
        let s = adaptive(100, 10);
        // Rounds whose accuracies the update rule reads: (r+1) % I == 0.
        let groups = s.monitored_groups(9).unwrap();
        assert_eq!(groups.len(), 5);
        assert_eq!(groups[0], vec![0, 1]);
        // Other rounds skip evaluation entirely.
        assert!(s.monitored_groups(0).is_none());
        assert!(s.monitored_groups(10).is_none());
    }

    #[test]
    fn change_probs_boosts_lagging_tier() {
        let mut s = adaptive(1000, 5);
        // Rounds 0..5: tier accuracies flat, tier 3 lagging badly.
        for r in 0..10u64 {
            let _ = s.select(r, 2);
            s.observe(r, &[0.9, 0.9, 0.9, 0.2, 0.9]);
        }
        // At round 10 (r % 5 == 0, r >= 5) accuracy has not improved, so
        // probabilities must shift toward tier 3.
        let _ = s.select(10, 2);
        let p = s.probs();
        let p3 = p[3];
        for (t, &pt) in p.iter().enumerate() {
            if t != 3 {
                assert!(
                    p3 > 5.0 * pt,
                    "lagging tier prob {p3} should dominate tier {t} ({pt})"
                );
            }
        }
    }

    #[test]
    fn probs_stay_normalised_after_updates() {
        let mut s = adaptive(1000, 5);
        for r in 0..50u64 {
            let _ = s.select(r, 2);
            let accs: Vec<f64> = (0..5)
                .map(|t| 0.3 + 0.1 * t as f64 + 0.001 * r as f64)
                .collect();
            s.observe(r, &accs);
        }
        let sum: f64 = s.probs().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "probs sum {sum}");
    }

    #[test]
    fn exhausted_tier_is_skipped() {
        let mut s = adaptive(3, 1000);
        // With tiny credits, after many rounds every tier hits 0 and the
        // selector must keep working (refill path) without panicking.
        for r in 0..40u64 {
            let sel = s.select(r, 2);
            assert_eq!(sel.len(), 2);
            s.observe(r, &[0.5; 5]);
        }
    }

    #[test]
    fn exported_state_restores_mid_run_bit_for_bit() {
        // Run 30 rounds straight vs 15 + export/restore + 15: identical
        // selections, probabilities and credits throughout.
        let accs = |r: u64| -> Vec<f64> {
            (0..5)
                .map(|t| 0.3 + 0.12 * t as f64 + 0.002 * r as f64)
                .collect()
        };
        let mut continuous = adaptive(40, 5);
        let mut first = adaptive(40, 5);
        let mut cont_hist = Vec::new();
        for r in 0..30u64 {
            cont_hist.push(continuous.select(r, 2));
            continuous.observe(r, &accs(r));
            if r < 15 {
                let _ = first.select(r, 2);
                first.observe(r, &accs(r));
            }
        }
        let state = first.export_state().expect("adaptive exports state");
        let mut resumed = adaptive(40, 5);
        resumed.restore_state(&state);
        let mut resumed_hist = Vec::new();
        for r in 15..30u64 {
            resumed_hist.push(resumed.select(r, 2));
            resumed.observe(r, &accs(r));
        }
        assert_eq!(&cont_hist[15..], &resumed_hist[..]);
        assert_eq!(continuous.probs(), resumed.probs());
        assert_eq!(continuous.credits(), resumed.credits());
    }

    #[test]
    fn static_selectors_export_no_state() {
        let s = StaticTierSelector::new(assignment(), Policy::uniform(5), 0);
        assert!(s.export_state().is_none());
    }

    #[test]
    fn adaptive_is_deterministic() {
        let run = || {
            let mut s = adaptive(100, 10);
            let mut hist = Vec::new();
            for r in 0..30u64 {
                hist.push(s.select(r, 2));
                s.observe(r, &[0.4, 0.5, 0.6, 0.7, 0.8]);
            }
            hist
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn default_config_scales_with_run() {
        let c = AdaptiveConfig::for_run(500, 5);
        assert_eq!(c.credits_per_tier, 200);
        assert!(c.interval > 0);
    }

    #[test]
    fn adaptive_credits_never_select_an_exhausted_tier() {
        // Paper invariant (Algorithm 2, lines 8-16): a tier with zero
        // remaining credits must not be drawn. 5 tiers x 2 credits gives
        // exactly 10 drawable rounds, so the refill fallback cannot
        // trigger; if an exhausted tier were drawable, some tier would
        // exceed its 2 selections.
        let mut s = adaptive(2, 1000);
        let mut counts = [0usize; 5];
        for r in 0..10u64 {
            let credits_before = s.credits().to_vec();
            let sel = s.select(r, 2);
            assert_eq!(sel.len(), 2, "round {r} under-selected");
            let tier = *s.tier_history.last().expect("tier recorded");
            assert!(
                credits_before[tier] > 0,
                "round {r} drew tier {tier} with zero credits"
            );
            counts[tier] += 1;
            assert!(
                counts[tier] <= 2,
                "tier {tier} exceeded its credits: {counts:?}"
            );
            s.observe(r, &[0.5; 5]);
        }
        assert_eq!(counts.iter().sum::<usize>(), 10, "every round drew a tier");
        assert!(s.credits().iter().all(|&c| c == 0), "all credits spent");
    }
}
