//! Ready-made experiment configurations reproducing the setups of §5.1.
//!
//! An [`ExperimentConfig`] bundles dataset family, partition scenario,
//! hardware profile, model and hyper-parameters; the bench binaries and
//! examples build one, then compose runs through the
//! [`crate::runner::Runner`] it hands out via
//! [`crate::runner::Experiment::runner`]
//! (`cfg.runner().policy(&p).run()`, `cfg.runner().adaptive(None).run()`
//! and so on).
//!
//! Calibration note: the synthetic models are far smaller than the
//! paper's Keras CNNs, so the simulated device throughput
//! (`flops_per_cpu_sec`) is set to land per-round latencies in the same
//! range as the paper's testbed (seconds to a few hundred seconds per
//! round depending on CPU share and data size). All training-time
//! numbers are virtual seconds.

use crate::policy::Policy;
use crate::profiler::ProfilerConfig;
use crate::runner::Experiment;
use crate::scheduler::AdaptiveConfig;
use crate::tiering::TieringConfig;
use serde::{Deserialize, Serialize};
use tifl_data::partition::{self, Partition};
use tifl_data::synth::{Generator, SynthFamily, SynthSpec};
use tifl_data::FederatedDataset;
use tifl_fl::session::{AggregationMode, Session, SessionConfig, SessionOverrides};
use tifl_fl::{ClientConfig, TrainingReport};
use tifl_nn::models::ModelSpec;
use tifl_sim::latency::LatencyModelConfig;
use tifl_sim::{Cluster, ClusterConfig, DriftModel};
use tifl_tensor::{seed_rng, split_seed};

/// The paper's quantity-skew fractions (§5.1): group g of 5 owns
/// 10/15/20/25/30 % of the total data.
pub const PAPER_QUANTITY_FRACTIONS: [f64; 5] = [0.10, 0.15, 0.20, 0.25, 0.30];

/// Which data-heterogeneity scenario to generate (§5.1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DataScenario {
    /// IID: every client draws `per_client` samples uniformly.
    Iid {
        /// Samples per client.
        per_client: usize,
    },
    /// non-IID(k): every client holds exactly `k` classes
    /// (Zhao et al., used for CIFAR-10).
    ClassLimit {
        /// Samples per client.
        per_client: usize,
        /// Classes per client.
        k: usize,
    },
    /// Shard-based sort-by-label split with 2 shards per client
    /// (McMahan et al., used for MNIST / FMNIST).
    Shards {
        /// Total samples across clients.
        total: usize,
    },
    /// Quantity skew: groups own 10/15/20/25/30 % of `total`, IID
    /// content.
    QuantitySkew {
        /// Total samples across clients.
        total: usize,
    },
    /// Quantity skew *and* non-IID(k) — the paper's "Combine".
    QuantitySkewClassLimit {
        /// Total samples across clients.
        total: usize,
        /// Classes per client.
        k: usize,
    },
}

impl DataScenario {
    /// Generate the label partition for `clients` clients.
    #[must_use]
    pub fn partition(&self, clients: usize, classes: usize, seed: u64) -> Partition {
        let mut rng = seed_rng(split_seed(seed, 0xDA7A));
        match *self {
            DataScenario::Iid { per_client } => {
                partition::iid(clients, per_client, classes, &mut rng)
            }
            DataScenario::ClassLimit { per_client, k } => {
                partition::class_limit(clients, per_client, classes, k, &mut rng)
            }
            DataScenario::Shards { total } => {
                partition::shards(clients, total, classes, clients * 2, 2, &mut rng)
            }
            DataScenario::QuantitySkew { total } => partition::quantity_skew(
                clients,
                total,
                classes,
                &PAPER_QUANTITY_FRACTIONS,
                &mut rng,
            ),
            DataScenario::QuantitySkewClassLimit { total, k } => {
                partition::quantity_skew_class_limit(
                    clients,
                    total,
                    classes,
                    &PAPER_QUANTITY_FRACTIONS,
                    k,
                    &mut rng,
                )
            }
        }
    }
}

/// A complete experiment description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Experiment label (appears in harness output).
    pub name: String,
    /// Synthetic dataset family.
    pub family: SynthFamily,
    /// `|K|`: total clients.
    pub num_clients: usize,
    /// `|C|`: clients per round.
    pub clients_per_round: usize,
    /// Global rounds `N`.
    pub rounds: u64,
    /// Per-group CPU shares (equal-sized groups over `num_clients`).
    pub cpu_profile: Vec<f64>,
    /// Assign hardware to clients uniformly at random (LEAF extension).
    pub shuffle_assignment: bool,
    /// Data-heterogeneity scenario.
    pub data: DataScenario,
    /// Per-client feature-distribution skew: scale of a per-client style
    /// offset added to every local sample. The paper's non-IID splits
    /// skew features as well as labels (§3.3 notes non-IID(10) differs
    /// from IID through feature skew alone); 0 disables.
    pub feature_skew: f32,
    /// Model architecture.
    pub model: ModelSpec,
    /// Local-training hyper-parameters.
    pub client: ClientConfig,
    /// Latency-model parameters.
    pub latency: LatencyModelConfig,
    /// Evaluate the global model every this many rounds.
    pub eval_every: u64,
    /// Tiering parameters (`m` tiers).
    pub tiering: TieringConfig,
    /// Profiler parameters.
    pub profiler: ProfilerConfig,
    /// Update-collection strategy (WaitAll reproduces Algorithm 1;
    /// FirstK reproduces the Bonawitz et al. over-selection baseline).
    pub aggregation: AggregationMode,
    /// Communication model (update codec × link model); `None` keeps
    /// the legacy scalar-bandwidth, uncompressed wire. Usually set per
    /// run through `RunSpec.comm` rather than here.
    #[serde(default)]
    pub comm: Option<tifl_comm::CommSpec>,
    /// Time-varying device performance (None for the paper's static
    /// testbed; used by the re-profiling experiments).
    pub drift: DriftModel,
    /// Root seed.
    pub seed: u64,
}

impl ExperimentConfig {
    /// Simulated throughput calibrated for the small synthetic models
    /// (see module docs).
    fn paper_latency() -> LatencyModelConfig {
        LatencyModelConfig {
            flops_per_cpu_sec: 5.0e6,
            jitter_sigma: 0.05,
            base_overhead_sec: 0.2,
        }
    }

    fn cifar_base(name: &str, seed: u64) -> Self {
        Self {
            name: name.to_string(),
            family: SynthFamily::Cifar10,
            num_clients: 50,
            clients_per_round: 5,
            rounds: 500,
            cpu_profile: tifl_sim::resource::profiles::CIFAR.to_vec(),
            shuffle_assignment: false,
            data: DataScenario::Iid { per_client: 400 },
            feature_skew: 0.0,
            model: ModelSpec::Mlp {
                input: 64,
                hidden: 128,
                classes: 10,
            },
            // The paper trains its CIFAR-10 CNN with RMSprop lr 0.01;
            // our synthetic stand-in model is orders of magnitude
            // smaller, so that lr converges almost instantly and would
            // flatten every accuracy-over-rounds curve. Scaling lr down
            // restores the paper's convergence horizon (~hundreds of
            // rounds) without touching any other hyper-parameter.
            client: ClientConfig {
                optimizer: tifl_fl::OptimizerSpec::RmsProp { lr: 0.0005 },
                ..ClientConfig::paper_synthetic()
            },
            latency: Self::paper_latency(),
            eval_every: 5,
            tiering: TieringConfig::default(),
            profiler: ProfilerConfig {
                sync_rounds: 5,
                tmax_sec: 1000.0,
            },
            aggregation: AggregationMode::WaitAll,
            comm: None,
            drift: DriftModel::None,
            seed,
        }
    }

    /// §5.2.2: CIFAR-10, resource heterogeneity only (IID data, equal
    /// sizes, CPUs 4/2/1/0.5/0.1 per group) — Fig. 3 column 1.
    #[must_use]
    pub fn cifar10_resource_het(seed: u64) -> Self {
        Self::cifar_base("cifar10/resource-het", seed)
    }

    /// §5.2.3: CIFAR-10, data-quantity heterogeneity only (homogeneous
    /// 2-CPU clients, group volumes 10–30 %) — Fig. 3 column 2.
    #[must_use]
    pub fn cifar10_quantity_het(seed: u64) -> Self {
        let mut c = Self::cifar_base("cifar10/quantity-het", seed);
        c.cpu_profile = tifl_sim::resource::profiles::HOMOGENEOUS.to_vec();
        c.data = DataScenario::QuantitySkew { total: 20_000 };
        c
    }

    /// §5.2.3 / Fig. 4: CIFAR-10, non-IID(k) only (homogeneous 2-CPU
    /// clients, equal sizes, k classes per client).
    #[must_use]
    pub fn cifar10_noniid(k: usize, seed: u64) -> Self {
        let mut c = Self::cifar_base(&format!("cifar10/non-iid({k})"), seed);
        c.cpu_profile = tifl_sim::resource::profiles::HOMOGENEOUS.to_vec();
        c.data = DataScenario::ClassLimit { per_client: 400, k };
        c.feature_skew = 0.5;
        c
    }

    /// §5.2.4 / Fig. 6 col 1: resource heterogeneity + non-IID(k), equal
    /// data quantities.
    #[must_use]
    pub fn cifar10_resource_noniid(k: usize, seed: u64) -> Self {
        let mut c = Self::cifar_base(&format!("cifar10/resource+non-iid({k})"), seed);
        c.data = DataScenario::ClassLimit { per_client: 400, k };
        c.feature_skew = 0.5;
        c
    }

    /// §5.2.4 / Fig. 6 col 2: resource + quantity + non-IID(k) — the
    /// paper's "Combine" scenario.
    #[must_use]
    pub fn cifar10_combine(k: usize, seed: u64) -> Self {
        let mut c = Self::cifar_base(&format!("cifar10/combine({k})"), seed);
        c.data = DataScenario::QuantitySkewClassLimit { total: 20_000, k };
        c.feature_skew = 0.5;
        c
    }

    /// §5.2.4 / Fig. 5: MNIST or Fashion-MNIST with resource + data
    /// heterogeneity (CPUs 2/1/0.75/0.5/0.25; quantity skew + 2-class
    /// shard-style skew).
    #[must_use]
    pub fn mnist_like_combined(family: SynthFamily, seed: u64) -> Self {
        assert!(
            matches!(family, SynthFamily::Mnist | SynthFamily::FashionMnist),
            "use the cifar/femnist constructors for other families"
        );
        let name = match family {
            SynthFamily::Mnist => "mnist/resource+data-het",
            _ => "fmnist/resource+data-het",
        };
        let mut c = Self::cifar_base(name, seed);
        c.family = family;
        c.cpu_profile = tifl_sim::resource::profiles::MNIST.to_vec();
        c.data = DataScenario::QuantitySkewClassLimit {
            total: 20_000,
            k: 2,
        };
        c.feature_skew = 0.3;
        c.model = ModelSpec::Mlp {
            input: 64,
            hidden: 128,
            classes: 10,
        };
        c
    }

    /// Tiny configuration for unit/integration tests: 10 clients, small
    /// data, few rounds. Keeps test suites fast while exercising every
    /// code path.
    #[must_use]
    pub fn tiny(seed: u64) -> Self {
        let mut c = Self::cifar_base("tiny", seed);
        c.family = SynthFamily::Mnist;
        c.num_clients = 10;
        c.clients_per_round = 2;
        c.rounds = 12;
        c.data = DataScenario::Iid { per_client: 40 };
        c.model = ModelSpec::Mlp {
            input: 64,
            hidden: 16,
            classes: 10,
        };
        c.eval_every = 2;
        c.profiler = ProfilerConfig {
            sync_rounds: 2,
            tmax_sec: 1e6,
        };
        c
    }

    // -- construction -----------------------------------------------------

    /// Materialise the federated dataset for this config.
    #[must_use]
    pub fn build_data(&self) -> FederatedDataset {
        let mut spec = SynthSpec::family(self.family);
        if self.feature_skew > 0.0 {
            spec.style_scale = self.feature_skew;
        }
        let gen = Generator::new(spec, split_seed(self.seed, 0x6E4));
        let part = self
            .data
            .partition(self.num_clients, spec.classes, self.seed);
        FederatedDataset::materialize(&gen, &part, 0.1, 50, split_seed(self.seed, 0xFED))
    }

    /// Build the simulated testbed for this config.
    #[must_use]
    pub fn build_cluster(&self) -> Cluster {
        let mut cfg = ClusterConfig::equal_groups(
            self.num_clients,
            &self.cpu_profile,
            split_seed(self.seed, 0xC1),
        );
        cfg.latency = self.latency;
        cfg.shuffle_assignment = self.shuffle_assignment;
        let mut cluster = Cluster::new(&cfg);
        cluster.set_drift(self.drift.clone());
        cluster
    }

    /// Build a fresh training session (deterministic per config).
    #[must_use]
    pub fn make_session(&self) -> Session {
        self.build_session(&SessionOverrides::default())
    }

    /// Eq. 6 estimate for a (non-vanilla) policy under this config's
    /// profiled tiers.
    #[must_use]
    pub fn estimate_policy(&self, policy: &Policy) -> f64 {
        self.runner().estimate(policy)
    }

    // -- legacy execution wrappers ----------------------------------------
    //
    // The pipeline these methods used to duplicate lives in
    // `crate::runner`; each one is now a thin spec over it. They remain
    // bit-for-bit compatible (same seeds, same labels).

    /// Run one full training under a static policy (vanilla bypasses
    /// tiering, matching Algorithm 1).
    #[deprecated(since = "0.2.0", note = "use `cfg.runner().policy(policy).run()`")]
    #[must_use]
    pub fn run_policy(&self, policy: &Policy) -> TrainingReport {
        self.runner().policy(policy).run()
    }

    /// As `run_policy` but also returns the finished session, so callers
    /// can inspect the final global model.
    #[deprecated(
        since = "0.2.0",
        note = "use `cfg.runner().policy(policy).run_with_session()`"
    )]
    #[must_use]
    pub fn run_policy_session(&self, policy: &Policy) -> (TrainingReport, Session) {
        self.runner().policy(policy).run_with_session()
    }

    /// Run one full training under the adaptive policy (Algorithm 2).
    #[deprecated(since = "0.2.0", note = "use `cfg.runner().adaptive(config).run()`")]
    #[must_use]
    pub fn run_adaptive(&self, config: Option<AdaptiveConfig>) -> TrainingReport {
        self.runner().adaptive(config).run()
    }

    /// Run the FedCS baseline (§2): random selection filtered by a
    /// per-round deadline over profiled latencies.
    #[deprecated(
        since = "0.2.0",
        note = "use `cfg.runner().deadline(deadline_sec).run()`"
    )]
    #[must_use]
    pub fn run_fedcs(&self, deadline_sec: f64) -> TrainingReport {
        self.runner().deadline(deadline_sec).run()
    }

    /// Run the Bonawitz et al. over-selection baseline (§2).
    #[deprecated(
        since = "0.2.0",
        note = "use `cfg.runner().vanilla().overselect(factor).run()`"
    )]
    #[must_use]
    pub fn run_overselection(&self, factor: f64) -> TrainingReport {
        self.runner().vanilla().overselect(factor).run()
    }

    /// Run vanilla selection with the FedProx proximal objective (§2).
    #[deprecated(
        since = "0.2.0",
        note = "use `cfg.runner().vanilla().fedprox(mu).run()`"
    )]
    #[must_use]
    pub fn run_fedprox(&self, mu: f32) -> TrainingReport {
        self.runner().vanilla().fedprox(mu).run()
    }

    /// Run a static tier policy with periodic re-profiling every
    /// `reprofile_every` rounds (§4.2).
    ///
    /// # Panics
    /// Panics on a vanilla policy or a zero interval.
    #[deprecated(
        since = "0.2.0",
        note = "use `cfg.runner().policy(policy).reprofile_every(n).run()`"
    )]
    #[must_use]
    pub fn run_policy_with_reprofiling(
        &self,
        policy: &Policy,
        reprofile_every: u64,
    ) -> TrainingReport {
        self.runner()
            .policy(policy)
            .reprofile_every(reprofile_every)
            .run()
    }
}

impl Experiment for ExperimentConfig {
    fn seed(&self) -> u64 {
        self.seed
    }

    fn rounds(&self) -> u64 {
        self.rounds
    }

    fn num_clients(&self) -> usize {
        self.num_clients
    }

    fn profiler_config(&self) -> ProfilerConfig {
        self.profiler
    }

    fn tiering_config(&self) -> TieringConfig {
        self.tiering
    }

    fn build_session(&self, overrides: &SessionOverrides) -> Session {
        let session_cfg = SessionConfig {
            model: self.model,
            client: self.client,
            clients_per_round: self.clients_per_round,
            rounds: self.rounds,
            eval_every: self.eval_every,
            tmax_sec: self.profiler.tmax_sec,
            aggregation: self.aggregation,
            comm: self.comm,
            seed: split_seed(self.seed, 0x5E55),
        }
        .with_overrides(overrides);
        Session::new(self.build_data(), self.build_cluster(), session_cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tifl_fl::RoundReport;

    #[test]
    fn tiny_config_runs_all_policies() {
        let cfg = ExperimentConfig::tiny(1);
        let mut runner = cfg.runner();
        for policy in [Policy::vanilla(), Policy::uniform(5), Policy::fast(5)] {
            let report = runner.policy(&policy).run();
            assert_eq!(report.rounds.len(), 12, "policy {}", policy.name);
            assert!(report.total_time() > 0.0);
        }
    }

    #[test]
    fn tiny_adaptive_runs() {
        let cfg = ExperimentConfig::tiny(2);
        let report = cfg.runner().adaptive(None).run();
        assert_eq!(report.policy, "adaptive");
        assert_eq!(report.rounds.len(), 12);
    }

    #[test]
    fn fast_policy_is_faster_than_slow() {
        let mut cfg = ExperimentConfig::tiny(3);
        cfg.cpu_profile = tifl_sim::resource::profiles::CIFAR.to_vec();
        let mut runner = cfg.runner();
        let fast = runner.policy(&Policy::fast(5)).run().total_time();
        let slow = runner.policy(&Policy::slow(5)).run().total_time();
        assert!(slow > 2.0 * fast, "slow {slow} vs fast {fast}");
    }

    #[test]
    fn profiling_orders_tiers_by_hardware() {
        let cfg = ExperimentConfig::tiny(4);
        let (assignment, result) = cfg.profile_and_tier();
        assert_eq!(assignment.num_tiers(), 5);
        assert!(result.dropouts().is_empty());
        let lats = assignment.tier_latencies();
        for w in lats.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn estimate_tracks_measured_time() {
        let cfg = ExperimentConfig::tiny(5);
        let policy = Policy::uniform(5);
        let est = cfg.estimate_policy(&policy);
        let actual = cfg.runner().policy(&policy).run().total_time();
        let err = crate::estimator::mape(est, actual);
        assert!(err < 30.0, "MAPE {err}% (est {est}, actual {actual})");
    }

    #[test]
    fn experiments_are_deterministic() {
        let cfg = ExperimentConfig::tiny(6);
        let a = cfg.runner().policy(&Policy::uniform(5)).run();
        let b = cfg.runner().policy(&Policy::uniform(5)).run();
        assert_eq!(a, b);
    }

    #[test]
    fn scenario_partitions_have_expected_shape() {
        let sc = DataScenario::QuantitySkew { total: 1000 };
        let p = sc.partition(10, 10, 0);
        assert_eq!(p.total_samples(), 1000);
        let sizes = p.sizes();
        assert!(sizes[0] < sizes[9], "quantity skew not applied: {sizes:?}");

        let sc = DataScenario::ClassLimit {
            per_client: 100,
            k: 2,
        };
        let p = sc.partition(10, 10, 0);
        for c in 0..10 {
            assert!(p.distinct_classes(c) <= 2);
        }
    }

    #[test]
    fn fedcs_baseline_avoids_slow_clients() {
        let mut cfg = ExperimentConfig::tiny(31);
        cfg.cpu_profile = tifl_sim::resource::profiles::CIFAR.to_vec();
        cfg.latency.base_overhead_sec = 0.0;
        let (assignment, _) = cfg.profile_and_tier();
        // Deadline between tier 2 and tier 3 latency: only fast clients
        // qualify.
        let lats = assignment.tier_latencies();
        let deadline = (lats[2] + lats[3]) / 2.0;
        let report = cfg.runner().deadline(deadline).run();
        assert_eq!(report.policy, "fedcs");
        let slow_clients = &assignment.tiers[4].clients;
        let counts = report.selection_counts(cfg.num_clients);
        for &c in slow_clients {
            assert_eq!(counts[c], 0, "fedcs selected deadline-violating client {c}");
        }
        // And it is faster than vanilla as a result.
        let vanilla = cfg.runner().vanilla().run();
        assert!(report.total_time() < vanilla.total_time());
    }

    #[test]
    fn overselection_baseline_discards_work() {
        let mut cfg = ExperimentConfig::tiny(32);
        cfg.cpu_profile = tifl_sim::resource::profiles::CIFAR.to_vec();
        let report = cfg.runner().vanilla().overselect(1.5).run();
        assert!(report.discarded_work_fraction() > 0.2);
        let vanilla = cfg.runner().vanilla().run();
        assert!(
            report.total_time() < vanilla.total_time(),
            "over-selection {} should beat wait-all vanilla {}",
            report.total_time(),
            vanilla.total_time()
        );
    }

    #[test]
    fn fedprox_baseline_runs_and_labels() {
        let cfg = ExperimentConfig::tiny(33);
        let report = cfg.runner().vanilla().fedprox(0.1).run();
        assert_eq!(report.policy, "fedprox(0.1)");
        assert_eq!(report.rounds.len(), 12);
    }

    #[test]
    fn reprofiling_tracks_regime_switch() {
        // Plant a regime switch: the fast group becomes the slow one at
        // round 10. With re-profiling every 10 rounds under `fast`, the
        // post-switch segments must stop selecting the now-slow devices.
        let mut cfg = ExperimentConfig::tiny(34);
        cfg.cpu_profile = tifl_sim::resource::profiles::CIFAR.to_vec();
        cfg.latency.base_overhead_sec = 0.0;
        cfg.rounds = 20;
        // Devices 0,1 (4 CPUs) slow down 100x at round 10.
        let mut factors = vec![1.0; 10];
        factors[0] = 0.01;
        factors[1] = 0.01;
        cfg.drift = DriftModel::RegimeSwitch {
            at_round: 10,
            factors,
        };

        let report = cfg
            .runner()
            .policy(&Policy::fast(5))
            .reprofile_every(10)
            .run();
        assert_eq!(report.policy, "fast+reprofile");
        // First segment: fast tier = devices 0,1; second segment: they
        // must vanish from selection.
        let first: Vec<&RoundReport> = report.rounds.iter().take(10).collect();
        let second: Vec<&RoundReport> = report.rounds.iter().skip(10).collect();
        assert!(
            first.iter().all(|r| r.selected.iter().all(|&c| c < 2)),
            "pre-switch fast tier should be devices 0/1"
        );
        assert!(
            second
                .iter()
                .all(|r| !r.selected.contains(&0) && !r.selected.contains(&1)),
            "post-switch re-profile should evict the slowed devices"
        );
    }

    #[test]
    fn static_tiering_misses_regime_switch_without_reprofiling() {
        // Same drift, no re-profiling: `fast` keeps selecting the
        // now-slow devices and pays for it in round latency.
        let mut cfg = ExperimentConfig::tiny(35);
        cfg.cpu_profile = tifl_sim::resource::profiles::CIFAR.to_vec();
        cfg.latency.base_overhead_sec = 0.0;
        cfg.rounds = 20;
        let mut factors = vec![1.0; 10];
        factors[0] = 0.01;
        factors[1] = 0.01;
        cfg.drift = DriftModel::RegimeSwitch {
            at_round: 10,
            factors,
        };

        let mut runner = cfg.runner();
        let stale = runner.policy(&Policy::fast(5)).run();
        let fresh = runner.reprofile_every(10).run();
        assert!(
            fresh.total_time() < stale.total_time() / 2.0,
            "re-profiling ({}) should be much faster than stale tiers ({})",
            fresh.total_time(),
            stale.total_time()
        );
    }

    #[test]
    fn paper_presets_match_section_5() {
        let c = ExperimentConfig::cifar10_resource_het(0);
        assert_eq!(c.num_clients, 50);
        assert_eq!(c.clients_per_round, 5);
        assert_eq!(c.rounds, 500);
        assert_eq!(c.cpu_profile.len(), 5);

        let q = ExperimentConfig::cifar10_quantity_het(0);
        assert_eq!(q.cpu_profile, vec![2.0]);

        let m = ExperimentConfig::mnist_like_combined(SynthFamily::Mnist, 0);
        assert_eq!(m.cpu_profile, tifl_sim::resource::profiles::MNIST.to_vec());
    }
}
