//! Tiering: grouping clients by profiled latency (§4.2).
//!
//! The collected latencies form a histogram that is split into `m`
//! groups; clients in the same group form a tier, and each tier records
//! its average response latency for the scheduler and the estimator.
//!
//! Two split strategies are provided:
//!
//! * [`SplitStrategy::EqualCount`] (default) — sort by latency and cut
//!   into `m` equal-population quantile groups. This guarantees every
//!   tier has `~|K|/m` clients, satisfying the paper's requirement that
//!   `n_j > |C|` for every tier.
//! * [`SplitStrategy::EqualWidth`] — `m` equal-width latency bins
//!   (the literal histogram reading); bins can be empty, in which case
//!   they are dropped.

use serde::{Deserialize, Serialize};

/// How to split the latency histogram into tiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SplitStrategy {
    /// Equal-population quantile split (default).
    #[default]
    EqualCount,
    /// Equal-width latency bins; empty bins are dropped.
    EqualWidth,
}

/// Tiering parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TieringConfig {
    /// Number of tiers `m` (paper: 5).
    pub num_tiers: usize,
    /// Histogram split strategy.
    pub strategy: SplitStrategy,
}

impl Default for TieringConfig {
    fn default() -> Self {
        Self {
            num_tiers: 5,
            strategy: SplitStrategy::EqualCount,
        }
    }
}

/// One tier: a set of clients with similar response latency.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tier {
    /// Client ids in this tier.
    pub clients: Vec<usize>,
    /// Mean profiled response latency of the tier (seconds) — the
    /// `L_tier_i` of Eq. 6.
    pub avg_latency: f64,
}

/// The complete tier assignment, ordered fastest (tier 0) to slowest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TierAssignment {
    /// Tiers ordered by increasing average latency.
    pub tiers: Vec<Tier>,
}

impl TierAssignment {
    /// Build tiers from profiled latencies.
    ///
    /// `latencies[i] = None` marks client `i` as a dropout to exclude.
    ///
    /// # Panics
    /// Panics if there are fewer live clients than requested tiers, or
    /// `num_tiers == 0`.
    #[must_use]
    pub fn from_latencies(latencies: &[Option<f64>], config: &TieringConfig) -> Self {
        assert!(config.num_tiers > 0, "need at least one tier");
        let mut live: Vec<(usize, f64)> = latencies
            .iter()
            .enumerate()
            .filter_map(|(i, l)| l.map(|v| (i, v)))
            .collect();
        assert!(
            live.len() >= config.num_tiers,
            "cannot split {} live clients into {} tiers",
            live.len(),
            config.num_tiers
        );
        live.sort_by(|a, b| a.1.total_cmp(&b.1));

        let groups: Vec<Vec<(usize, f64)>> = match config.strategy {
            SplitStrategy::EqualCount => {
                let m = config.num_tiers;
                let n = live.len();
                // Distribute n clients over m tiers as evenly as possible
                // (first `n % m` tiers get one extra).
                let mut groups = Vec::with_capacity(m);
                let base = n / m;
                let extra = n % m;
                let mut start = 0;
                for t in 0..m {
                    let size = base + usize::from(t < extra);
                    groups.push(live[start..start + size].to_vec());
                    start += size;
                }
                groups
            }
            SplitStrategy::EqualWidth => {
                let lo = live.first().expect("non-empty").1;
                let hi = live.last().expect("non-empty").1;
                let m = config.num_tiers;
                let width = ((hi - lo) / m as f64).max(f64::EPSILON);
                let mut groups: Vec<Vec<(usize, f64)>> = vec![Vec::new(); m];
                for &(i, l) in &live {
                    let bin = (((l - lo) / width) as usize).min(m - 1);
                    groups[bin].push((i, l));
                }
                groups.retain(|g| !g.is_empty());
                groups
            }
        };

        let tiers = groups
            .into_iter()
            .map(|g| {
                // tifl-lint: allow(float-reduce-order) — fixed-order fold: slice iteration order is deterministic and the group is pre-sorted
                let avg = g.iter().map(|&(_, l)| l).sum::<f64>() / g.len() as f64;
                Tier {
                    clients: g.into_iter().map(|(i, _)| i).collect(),
                    avg_latency: avg,
                }
            })
            .collect();
        Self { tiers }
    }

    /// Number of tiers.
    #[must_use]
    pub fn num_tiers(&self) -> usize {
        self.tiers.len()
    }

    /// Total clients across tiers.
    #[must_use]
    pub fn num_clients(&self) -> usize {
        self.tiers.iter().map(|t| t.clients.len()).sum()
    }

    /// Average latency of each tier, fastest first (`L_tier_i`).
    #[must_use]
    pub fn tier_latencies(&self) -> Vec<f64> {
        self.tiers.iter().map(|t| t.avg_latency).collect()
    }

    /// The tier index containing client `c`, if any.
    #[must_use]
    pub fn tier_of(&self, c: usize) -> Option<usize> {
        self.tiers.iter().position(|t| t.clients.contains(&c))
    }

    /// Client groups per tier (for the session's group evaluation).
    #[must_use]
    pub fn groups(&self) -> Vec<Vec<usize>> {
        self.tiers.iter().map(|t| t.clients.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn latencies(vals: &[f64]) -> Vec<Option<f64>> {
        vals.iter().map(|&v| Some(v)).collect()
    }

    #[test]
    fn equal_count_splits_evenly() {
        let l = latencies(&[5.0, 1.0, 3.0, 2.0, 4.0, 6.0, 8.0, 7.0, 10.0, 9.0]);
        let a = TierAssignment::from_latencies(&l, &TieringConfig::default());
        assert_eq!(a.num_tiers(), 5);
        assert!(a.tiers.iter().all(|t| t.clients.len() == 2));
        // fastest tier holds the two smallest latencies (clients 1 and 3)
        let mut t0 = a.tiers[0].clients.clone();
        t0.sort_unstable();
        assert_eq!(t0, vec![1, 3]);
    }

    #[test]
    fn tiers_ordered_by_latency() {
        let l = latencies(&[9.0, 1.0, 5.0, 2.0, 7.0, 3.0, 8.0, 4.0, 6.0, 10.0]);
        let a = TierAssignment::from_latencies(&l, &TieringConfig::default());
        let lats = a.tier_latencies();
        for w in lats.windows(2) {
            assert!(w[0] < w[1], "tier latencies not increasing: {lats:?}");
        }
    }

    #[test]
    fn uneven_population_distributes_remainder() {
        let l = latencies(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
        let cfg = TieringConfig {
            num_tiers: 3,
            ..Default::default()
        };
        let a = TierAssignment::from_latencies(&l, &cfg);
        let sizes: Vec<usize> = a.tiers.iter().map(|t| t.clients.len()).collect();
        assert_eq!(sizes, vec![3, 2, 2]);
        assert_eq!(a.num_clients(), 7);
    }

    #[test]
    fn dropouts_are_excluded() {
        let mut l = latencies(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        l[2] = None;
        let cfg = TieringConfig {
            num_tiers: 5,
            ..Default::default()
        };
        let a = TierAssignment::from_latencies(&l, &cfg);
        assert_eq!(a.num_clients(), 5);
        assert_eq!(a.tier_of(2), None);
    }

    #[test]
    fn equal_width_respects_gaps() {
        // Two clusters of latencies: 1-2 and 99-100 with 5 requested bins
        // -> only two non-empty bins survive.
        let l = latencies(&[1.0, 1.5, 2.0, 99.0, 99.5, 100.0]);
        let cfg = TieringConfig {
            num_tiers: 5,
            strategy: SplitStrategy::EqualWidth,
        };
        let a = TierAssignment::from_latencies(&l, &cfg);
        assert_eq!(a.num_tiers(), 2);
        assert_eq!(a.tiers[0].clients.len(), 3);
        assert_eq!(a.tiers[1].clients.len(), 3);
    }

    #[test]
    fn tier_of_finds_every_client() {
        let l = latencies(&[3.0, 1.0, 2.0, 5.0, 4.0]);
        let cfg = TieringConfig {
            num_tiers: 5,
            ..Default::default()
        };
        let a = TierAssignment::from_latencies(&l, &cfg);
        for c in 0..5 {
            assert!(a.tier_of(c).is_some(), "client {c} missing");
        }
        // client 1 is fastest -> tier 0
        assert_eq!(a.tier_of(1), Some(0));
        assert_eq!(a.tier_of(3), Some(4));
    }

    #[test]
    #[should_panic(expected = "cannot split")]
    fn rejects_more_tiers_than_clients() {
        let l = latencies(&[1.0, 2.0]);
        let _ = TierAssignment::from_latencies(&l, &TieringConfig::default());
    }

    #[test]
    fn avg_latency_is_group_mean() {
        let l = latencies(&[1.0, 2.0, 10.0, 20.0]);
        let cfg = TieringConfig {
            num_tiers: 2,
            ..Default::default()
        };
        let a = TierAssignment::from_latencies(&l, &cfg);
        assert!((a.tiers[0].avg_latency - 1.5).abs() < 1e-12);
        assert!((a.tiers[1].avg_latency - 15.0).abs() < 1e-12);
    }

    #[test]
    fn clients_land_in_the_latency_correct_tier() {
        // Paper invariant (§4.2): tier boundaries respect the latency
        // order — under either split strategy, no client in tier i is
        // slower than any client in tier i+1.
        let vals = [
            37.0, 2.0, 55.0, 8.0, 90.0, 13.0, 71.0, 3.0, 28.0, 44.0, 61.0, 19.0,
        ];
        let l = latencies(&vals);
        for strategy in [SplitStrategy::EqualCount, SplitStrategy::EqualWidth] {
            let cfg = TieringConfig {
                num_tiers: 4,
                strategy,
            };
            let a = TierAssignment::from_latencies(&l, &cfg);
            for (i, w) in a.tiers.windows(2).enumerate() {
                let fast_max = w[0]
                    .clients
                    .iter()
                    .map(|&c| vals[c])
                    .fold(f64::NEG_INFINITY, f64::max);
                let slow_min = w[1]
                    .clients
                    .iter()
                    .map(|&c| vals[c])
                    .fold(f64::INFINITY, f64::min);
                assert!(
                    fast_max <= slow_min,
                    "{strategy:?}: tier {i} max {fast_max} exceeds tier {} min {slow_min}",
                    i + 1
                );
            }
        }
    }

    #[test]
    fn tiers_partition_the_live_client_set() {
        // Paper invariant (§4.2): the tiers are a partition of the live
        // (non-dropout) clients — every live client in exactly one tier,
        // dropouts in none.
        let mut l = latencies(&[
            12.0, 5.0, 33.0, 7.0, 21.0, 48.0, 3.0, 16.0, 27.0, 9.0, 39.0, 14.0, 52.0, 6.0, 24.0,
        ]);
        l[4] = None;
        l[11] = None;
        for strategy in [SplitStrategy::EqualCount, SplitStrategy::EqualWidth] {
            let cfg = TieringConfig {
                num_tiers: 5,
                strategy,
            };
            let a = TierAssignment::from_latencies(&l, &cfg);
            let mut seen = vec![0usize; l.len()];
            for tier in &a.tiers {
                for &c in &tier.clients {
                    assert!(c < l.len(), "{strategy:?}: unknown client {c}");
                    seen[c] += 1;
                }
            }
            for (c, lat) in l.iter().enumerate() {
                assert_eq!(
                    seen[c],
                    usize::from(lat.is_some()),
                    "{strategy:?}: client {c} appears {} times",
                    seen[c]
                );
            }
        }
    }
}
