//! Straggler-selection probability analysis (§3.2, Eqs. 2–5).
//!
//! In vanilla FL, the probability that *at least one* of the `|C|`
//! selected clients comes from the slowest level `τ_m` is
//!
//! ```text
//! Pr_s = 1 - C(|K| - |τ_m|, |C|) / C(|K|, |C|)          (Eqs. 2-3)
//!      > 1 - ((|K| - |τ_m|) / |K|)^|C|                  (Eq. 5)
//! ```
//!
//! which approaches 1 for realistic pool sizes — the formal argument for
//! why random selection almost always pays the straggler penalty.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// Eq. 2: probability that a uniform-random selection of `c` clients
/// from a pool of `k` avoids all `slowest` stragglers.
///
/// Computed as the product form of Eq. 4 to stay in `f64` range for
/// pools of any size.
///
/// # Panics
/// Panics if `c > k` or `slowest > k`.
#[must_use]
pub fn prob_avoid_stragglers(k: u64, slowest: u64, c: u64) -> f64 {
    assert!(c <= k, "cannot select {c} from {k}");
    assert!(slowest <= k, "straggler level larger than pool");
    if slowest == 0 {
        return 1.0;
    }
    if c > k - slowest {
        return 0.0;
    }
    // Π_{i=0}^{c-1} (k - slowest - i) / (k - i)
    (0..c)
        .map(|i| (k - slowest - i) as f64 / (k - i) as f64)
        .product()
}

/// Eq. 3: probability that at least one straggler is selected.
#[must_use]
pub fn prob_hit_stragglers(k: u64, slowest: u64, c: u64) -> f64 {
    1.0 - prob_avoid_stragglers(k, slowest, c)
}

/// Eq. 5's lower bound: `1 - ((k - slowest) / k)^c`.
#[must_use]
pub fn prob_hit_stragglers_lower_bound(k: u64, slowest: u64, c: u64) -> f64 {
    1.0 - ((k - slowest) as f64 / k as f64).powi(c as i32)
}

/// Monte-Carlo estimate of `Pr_s` by simulating uniform selections —
/// used to validate the closed form (and by the `straggler_prob` bench
/// binary to print theory vs simulation).
#[must_use]
pub fn prob_hit_stragglers_monte_carlo(
    k: u64,
    slowest: u64,
    c: u64,
    trials: u32,
    rng: &mut StdRng,
) -> f64 {
    let pool: Vec<u64> = (0..k).collect();
    let mut hits = 0u32;
    for _ in 0..trials {
        let sel: Vec<&u64> = pool.choose_multiple(rng, c as usize).collect();
        // Stragglers are the last `slowest` ids.
        if sel.iter().any(|&&x| x >= k - slowest) {
            hits += 1;
        }
    }
    f64::from(hits) / f64::from(trials)
}

/// Expected number of rounds (out of `rounds`) whose latency is bounded
/// by the straggler level, under vanilla selection.
#[must_use]
pub fn expected_straggler_rounds(k: u64, slowest: u64, c: u64, rounds: u64) -> f64 {
    prob_hit_stragglers(k, slowest, c) * rounds as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use tifl_tensor::seed_rng;

    #[test]
    fn paper_setting_hits_stragglers_often() {
        // §5.1: |K| = 50, 10 clients in the slowest tier, |C| = 5.
        let p = prob_hit_stragglers(50, 10, 5);
        assert!(p > 0.65, "Pr_s = {p}");
    }

    #[test]
    fn closed_form_matches_hypergeometric_small_case() {
        // k=5, slowest=2, c=2: avoid = C(3,2)/C(5,2) = 3/10.
        let p = prob_avoid_stragglers(5, 2, 2);
        assert!((p - 0.3).abs() < 1e-12);
    }

    #[test]
    fn bound_of_eq5_holds() {
        for (k, s, c) in [(50u64, 10u64, 5u64), (100, 20, 10), (1000, 100, 30)] {
            let exact = prob_hit_stragglers(k, s, c);
            let bound = prob_hit_stragglers_lower_bound(k, s, c);
            assert!(
                exact >= bound - 1e-12,
                "Eq.5 bound violated for ({k},{s},{c}): exact {exact} < bound {bound}"
            );
        }
    }

    #[test]
    fn probability_approaches_one_for_large_pools() {
        // The paper's argument: with large |K| and proportional |C|,
        // Pr_s ~= 1.
        let p = prob_hit_stragglers(100_000, 20_000, 50);
        assert!(p > 0.9999, "Pr_s = {p}");
    }

    #[test]
    fn monte_carlo_agrees_with_closed_form() {
        let mut rng = seed_rng(42);
        let exact = prob_hit_stragglers(50, 10, 5);
        let mc = prob_hit_stragglers_monte_carlo(50, 10, 5, 20_000, &mut rng);
        assert!((exact - mc).abs() < 0.01, "exact {exact} vs MC {mc}");
    }

    #[test]
    fn degenerate_cases() {
        assert_eq!(prob_hit_stragglers(10, 0, 5), 0.0);
        // Selecting everything guarantees hitting the stragglers.
        assert_eq!(prob_hit_stragglers(10, 1, 10), 1.0);
        // More selections than non-stragglers: must hit.
        assert_eq!(prob_hit_stragglers(10, 8, 5), 1.0);
    }

    #[test]
    fn expected_rounds_scale() {
        let e = expected_straggler_rounds(50, 10, 5, 500);
        let p = prob_hit_stragglers(50, 10, 5);
        assert!((e - 500.0 * p).abs() < 1e-9);
    }

    #[test]
    fn monotone_in_selection_size() {
        let mut prev = 0.0;
        for c in 1..=20 {
            let p = prob_hit_stragglers(100, 10, c);
            assert!(p >= prev, "Pr_s not monotone at c={c}");
            prev = p;
        }
    }
}
