//! Training-time estimation model (§4.5, Eq. 6) and the MAPE metric of
//! Table 2.

use crate::policy::Policy;
use crate::tiering::TierAssignment;

/// Eq. 6: `L_all = Σ_i (L_tier_i * P_i) * R` — expected total training
/// time for `rounds` rounds under per-tier selection probabilities.
///
/// # Panics
/// Panics if the probability vector and latency vector differ in length.
#[must_use]
pub fn estimate_training_time(tier_latencies: &[f64], probs: &[f64], rounds: u64) -> f64 {
    assert_eq!(
        tier_latencies.len(),
        probs.len(),
        "tier count mismatch: {} latencies vs {} probabilities",
        tier_latencies.len(),
        probs.len()
    );
    let per_round: f64 = tier_latencies.iter().zip(probs).map(|(&l, &p)| l * p).sum();
    per_round * rounds as f64
}

/// Convenience wrapper: estimate for a policy against a tier assignment.
///
/// # Panics
/// Panics on the vanilla policy (it has no per-tier probabilities; the
/// paper's Table 2 likewise only evaluates the tiered policies).
#[must_use]
pub fn estimate_for_policy(assignment: &TierAssignment, policy: &Policy, rounds: u64) -> f64 {
    assert!(
        !policy.is_vanilla(),
        "Eq. 6 is defined over tier probabilities; vanilla has none"
    );
    estimate_training_time(&assignment.tier_latencies(), &policy.probs, rounds)
}

/// Mean absolute percentage error (Eq. 7):
/// `|est - actual| / actual * 100`.
///
/// # Panics
/// Panics if `actual` is zero.
#[must_use]
pub fn mape(estimated: f64, actual: f64) -> f64 {
    assert!(actual != 0.0, "MAPE undefined for zero actual value");
    (estimated - actual).abs() / actual * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tiering::{Tier, TierAssignment};

    fn assignment() -> TierAssignment {
        TierAssignment {
            tiers: vec![
                Tier {
                    clients: vec![0, 1],
                    avg_latency: 10.0,
                },
                Tier {
                    clients: vec![2, 3],
                    avg_latency: 20.0,
                },
                Tier {
                    clients: vec![4, 5],
                    avg_latency: 40.0,
                },
            ],
        }
    }

    #[test]
    fn point_mass_policy_reduces_to_tier_latency() {
        let est = estimate_training_time(&[10.0, 20.0, 40.0], &[0.0, 0.0, 1.0], 100);
        assert!((est - 4000.0).abs() < 1e-9);
    }

    #[test]
    fn uniform_policy_gives_mean_latency() {
        let probs = [1.0 / 3.0; 3];
        let est = estimate_training_time(&[10.0, 20.0, 40.0], &probs, 3);
        assert!((est - 70.0).abs() < 1e-9);
    }

    #[test]
    fn estimate_scales_linearly_with_rounds() {
        let l = [5.0, 10.0];
        let p = [0.5, 0.5];
        let e1 = estimate_training_time(&l, &p, 100);
        let e2 = estimate_training_time(&l, &p, 200);
        assert!((e2 / e1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn estimate_for_policy_uses_assignment_latencies() {
        let a = assignment();
        let p = Policy::new("fastish", vec![0.5, 0.5, 0.0]);
        let est = estimate_for_policy(&a, &p, 10);
        assert!((est - 150.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "vanilla")]
    fn estimate_rejects_vanilla() {
        let _ = estimate_for_policy(&assignment(), &Policy::vanilla(), 10);
    }

    #[test]
    fn mape_matches_paper_definition() {
        assert!((mape(46_242.0, 44_977.0) - 2.812_66).abs() < 1e-3);
        assert_eq!(mape(100.0, 100.0), 0.0);
        assert!((mape(90.0, 100.0) - 10.0).abs() < 1e-12);
    }
}
