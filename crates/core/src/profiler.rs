//! The lightweight latency profiler (§4.2).
//!
//! All available clients are initialised with response latency 0 and
//! asked to run the training task for `sync_rounds` profiling rounds.
//! Clients answering within `Tmax` have their accumulated latency `RT_i`
//! incremented by the observed training time; the ones that time out are
//! incremented by `Tmax`. Clients with `RT_i >= sync_rounds * Tmax`
//! after profiling (i.e. they never answered) are dropouts and excluded
//! from tiering and scheduling.

use serde::{Deserialize, Serialize};
use tifl_sim::latency::TrainingTask;
use tifl_sim::Cluster;

/// Profiler parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProfilerConfig {
    /// Number of profiling rounds (`sync_rounds`).
    pub sync_rounds: u64,
    /// Per-round response timeout in seconds (`Tmax`).
    pub tmax_sec: f64,
}

impl Default for ProfilerConfig {
    fn default() -> Self {
        Self {
            sync_rounds: 5,
            tmax_sec: 1000.0,
        }
    }
}

/// Outcome of profiling one client pool.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileResult {
    /// Mean observed response latency per client; `None` marks a dropout
    /// (never answered within `Tmax`).
    pub mean_latency: Vec<Option<f64>>,
    /// Total virtual time spent profiling (sum over rounds of the
    /// slowest responder, like a real synchronised profiling phase).
    pub profiling_time: f64,
    /// The config used.
    pub config: ProfilerConfig,
}

impl ProfileResult {
    /// Ids of clients that survived profiling (non-dropouts).
    #[must_use]
    pub fn live_clients(&self) -> Vec<usize> {
        self.mean_latency
            .iter()
            .enumerate()
            .filter_map(|(i, l)| l.map(|_| i))
            .collect()
    }

    /// Ids of excluded dropouts.
    #[must_use]
    pub fn dropouts(&self) -> Vec<usize> {
        self.mean_latency
            .iter()
            .enumerate()
            .filter_map(|(i, l)| l.is_none().then_some(i))
            .collect()
    }
}

/// The profiler: measures every device in a cluster.
#[derive(Debug, Clone, Copy, Default)]
pub struct Profiler {
    config: ProfilerConfig,
}

impl Profiler {
    /// Profiler with the given config.
    #[must_use]
    pub fn new(config: ProfilerConfig) -> Self {
        Self { config }
    }

    /// Run `sync_rounds` profiling rounds over all devices before
    /// training begins (round position 0).
    ///
    /// `task_for(client)` supplies the training task each client would
    /// run (its local sample count and the model cost), so profiled
    /// latency reflects *both* resource and data-quantity heterogeneity
    /// — exactly why the paper's tiers capture the two jointly.
    #[must_use]
    pub fn profile(
        &self,
        cluster: &Cluster,
        task_for: impl Fn(usize) -> TrainingTask,
    ) -> ProfileResult {
        self.profile_at(cluster, task_for, 0)
    }

    /// Run profiling as of training round `base_round` — the periodic
    /// re-profiling path of §4.2 for clusters whose performance drifts.
    ///
    /// Profiling rounds are flagged with
    /// [`tifl_sim::drift::PROFILING_ROUND_FLAG`] so their jitter stream
    /// is distinct from training rounds while any drift model still sees
    /// the correct training-round position.
    #[must_use]
    pub fn profile_at(
        &self,
        cluster: &Cluster,
        task_for: impl Fn(usize) -> TrainingTask,
        base_round: u64,
    ) -> ProfileResult {
        let n = cluster.num_devices();
        let mut accumulated = vec![0.0f64; n];
        let mut responded = vec![false; n];
        let mut profiling_time = 0.0f64;

        for r in 0..self.config.sync_rounds {
            let round_id = (base_round + r) | tifl_sim::drift::PROFILING_ROUND_FLAG;
            let mut round_slowest = 0.0f64;
            for c in 0..n {
                let task = task_for(c);
                let observed = cluster
                    .response(c, round_id, &task)
                    .filter(|&l| l <= self.config.tmax_sec);
                match observed {
                    Some(l) => {
                        accumulated[c] += l;
                        responded[c] = true;
                        round_slowest = round_slowest.max(l);
                    }
                    None => {
                        accumulated[c] += self.config.tmax_sec;
                        round_slowest = self.config.tmax_sec;
                    }
                }
            }
            profiling_time += round_slowest;
        }

        let sync_rounds = self.config.sync_rounds as f64;
        let mean_latency = accumulated
            .iter()
            .zip(&responded)
            .map(|(&rt, &ok)| {
                // RT_i >= sync_rounds * Tmax means every round timed out.
                if !ok || rt >= sync_rounds * self.config.tmax_sec {
                    None
                } else {
                    Some(rt / sync_rounds)
                }
            })
            .collect();

        ProfileResult {
            mean_latency,
            profiling_time,
            config: self.config,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tifl_sim::dropout::DropoutModel;
    use tifl_sim::resource::profiles;
    use tifl_sim::ClusterConfig;

    fn task(_c: usize) -> TrainingTask {
        TrainingTask {
            samples: 100,
            epochs: 1,
            flops_per_sample: 1_000_000,
            update_bytes: 1_000,
            upload_bytes: None,
        }
    }

    fn cluster() -> Cluster {
        let mut cfg = ClusterConfig::equal_groups(20, &profiles::CIFAR[..4], 1);
        cfg.latency.base_overhead_sec = 0.0;
        Cluster::new(&cfg)
    }

    #[test]
    fn profiled_latency_orders_by_cpu_share() {
        let p = Profiler::new(ProfilerConfig {
            sync_rounds: 5,
            tmax_sec: 1e9,
        });
        let r = p.profile(&cluster(), task);
        // group means: devices 0-4 fastest ... 15-19 slowest
        let l0 = r.mean_latency[0].expect("client 0 completes profiling under uniform shares");
        let l19 = r.mean_latency[19].expect("client 19 completes profiling under uniform shares");
        assert!(l19 > 5.0 * l0, "fast {l0}, slow {l19}");
        assert!(r.dropouts().is_empty());
    }

    #[test]
    fn dead_devices_are_dropouts() {
        let mut c = cluster();
        let mut d = DropoutModel::always_available(20, 0);
        d.kill(&[3, 17]);
        c.set_dropout(d);
        let p = Profiler::new(ProfilerConfig {
            sync_rounds: 3,
            tmax_sec: 1e3,
        });
        let r = p.profile(&c, task);
        assert_eq!(r.dropouts(), vec![3, 17]);
        assert_eq!(r.live_clients().len(), 18);
    }

    #[test]
    fn flaky_devices_survive_but_penalised() {
        // Device that fails ~half its profiling rounds accumulates Tmax
        // for those rounds: mean latency well above its nominal latency.
        let mut c = cluster();
        let mut probs = vec![0.0; 20];
        probs[0] = 0.5;
        c.set_dropout(DropoutModel::from_probs(probs, 42));
        let p = Profiler::new(ProfilerConfig {
            sync_rounds: 20,
            tmax_sec: 100.0,
        });
        let r = p.profile(&c, task);
        let flaky = r.mean_latency[0].expect("flaky device should not be a dropout");
        let healthy = r.mean_latency[1].expect("healthy device profiles without dropouts");
        assert!(
            flaky > 5.0 * healthy,
            "flaky {flaky} should be penalised vs healthy {healthy}"
        );
    }

    #[test]
    fn profiling_accounts_virtual_time() {
        let p = Profiler::new(ProfilerConfig {
            sync_rounds: 5,
            tmax_sec: 1e9,
        });
        let r = p.profile(&cluster(), task);
        assert!(r.profiling_time > 0.0);
        // At least sync_rounds * (slowest mean) up to jitter.
        let slowest = r
            .mean_latency
            .iter()
            .flatten()
            .fold(0.0f64, |a, &b| a.max(b));
        assert!(r.profiling_time >= 0.8 * 5.0 * slowest);
    }

    #[test]
    fn profile_is_deterministic() {
        let p = Profiler::new(ProfilerConfig::default());
        let a = p.profile(&cluster(), task);
        let b = p.profile(&cluster(), task);
        assert_eq!(a, b);
    }

    #[test]
    fn data_quantity_shows_up_in_latency() {
        // Same hardware, different sample counts: latency must scale.
        let mut cfg = ClusterConfig::equal_groups(2, &[1.0], 5);
        cfg.latency.base_overhead_sec = 0.0;
        let c = Cluster::new(&cfg);
        let p = Profiler::new(ProfilerConfig {
            sync_rounds: 5,
            tmax_sec: 1e9,
        });
        let r = p.profile(&c, |client| TrainingTask {
            samples: if client == 0 { 100 } else { 1000 },
            epochs: 1,
            flops_per_sample: 1_000_000,
            update_bytes: 1_000,
            upload_bytes: None,
        });
        let small = r.mean_latency[0].expect("small-model client completes profiling");
        let big = r.mean_latency[1].expect("big-model client completes profiling");
        assert!((big / small - 10.0).abs() < 1.0, "ratio {}", big / small);
    }
}
