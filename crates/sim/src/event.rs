//! A generic discrete-event queue.
//!
//! Events are `(time, payload)` pairs popped in time order with FIFO
//! tie-breaking (a stable sequence number), which keeps simulations
//! deterministic when many events share a timestamp — e.g. all clients
//! of a round being dispatched at the same instant.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event scheduled at a virtual time.
#[derive(Debug, Clone)]
pub struct Event<T> {
    /// Virtual time in seconds.
    pub time: f64,
    /// Caller-defined payload.
    pub payload: T,
    seq: u64,
}

impl<T> PartialEq for Event<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Event<T> {}

impl<T> PartialOrd for Event<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Event<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Earliest-first event queue with stable FIFO tie-breaking.
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Event<T>>,
    next_seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }
}

impl<T> EventQueue<T> {
    /// Empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `payload` at `time`.
    ///
    /// # Panics
    /// Panics if `time` is NaN.
    pub fn schedule(&mut self, time: f64, payload: T) {
        assert!(!time.is_nan(), "event time must not be NaN");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { time, payload, seq });
    }

    /// Pop the earliest event, if any.
    pub fn pop(&mut self) -> Option<Event<T>> {
        self.heap.pop()
    }

    /// Time of the earliest event without popping it.
    #[must_use]
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, "c");
        q.schedule(1.0, "a");
        q.schedule(2.0, "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(1.0, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(5.0, ());
        assert_eq!(q.peek_time(), Some(5.0));
        assert_eq!(q.len(), 1);
    }

    #[test]
    #[should_panic(expected = "must not be NaN")]
    fn rejects_nan_time() {
        let mut q = EventQueue::new();
        q.schedule(f64::NAN, ());
    }
}
