//! A generic discrete-event queue.
//!
//! Events are `(time, payload)` pairs popped in time order with FIFO
//! tie-breaking (a stable sequence number), which keeps simulations
//! deterministic when many events share a timestamp — e.g. all clients
//! of a round being dispatched at the same instant.
//!
//! Scheduling returns an [`EventHandle`] that can later be
//! [cancelled](EventQueue::cancel) — the hook execution engines use to
//! cut in-flight work loose (e.g. over-selection discarding stragglers
//! once the target count of updates has arrived). Cancellation is lazy:
//! the event stays in the heap but is skipped on pop, the standard
//! O(log n) discrete-event technique.

use std::cmp::Ordering;
use std::collections::BTreeSet;
use std::collections::BinaryHeap;

/// An event scheduled at a virtual time.
#[derive(Debug, Clone)]
pub struct Event<T> {
    /// Virtual time in seconds.
    pub time: f64,
    /// Caller-defined payload.
    pub payload: T,
    seq: u64,
}

impl<T> PartialEq for Event<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Event<T> {}

impl<T> PartialOrd for Event<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Event<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A scheduled event's identity, used to [cancel](EventQueue::cancel) it
/// before it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventHandle(u64);

/// Earliest-first event queue with stable FIFO tie-breaking and lazy
/// cancellation.
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Event<T>>,
    next_seq: u64,
    /// Seqs scheduled and neither popped nor cancelled — O(1) validity
    /// checks for [`EventQueue::cancel`].
    live: BTreeSet<u64>,
    cancelled: BTreeSet<u64>,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
            live: BTreeSet::new(),
            cancelled: BTreeSet::new(),
        }
    }
}

impl<T> EventQueue<T> {
    /// Empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `payload` at `time`; the returned handle can cancel it.
    ///
    /// # Panics
    /// Panics if `time` is NaN.
    pub fn schedule(&mut self, time: f64, payload: T) -> EventHandle {
        assert!(!time.is_nan(), "event time must not be NaN");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { time, payload, seq });
        self.live.insert(seq);
        EventHandle(seq)
    }

    /// Cancel a scheduled event. Returns `true` if the event was still
    /// pending (cancelling twice, or after the event fired, is a no-op
    /// returning `false`).
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        if !self.live.remove(&handle.0) {
            return false;
        }
        self.cancelled.insert(handle.0)
    }

    /// Pop the earliest non-cancelled event, if any.
    pub fn pop(&mut self) -> Option<Event<T>> {
        while let Some(e) = self.heap.pop() {
            if !self.cancelled.remove(&e.seq) {
                self.live.remove(&e.seq);
                return Some(e);
            }
        }
        None
    }

    /// Time of the earliest non-cancelled event without popping it
    /// (`&mut` because cancelled entries at the top are discarded here).
    #[must_use]
    pub fn peek_time(&mut self) -> Option<f64> {
        while let Some(top) = self.heap.peek() {
            if self.cancelled.remove(&top.seq) {
                self.heap.pop();
            } else {
                return Some(top.time);
            }
        }
        None
    }

    /// Number of pending (non-cancelled) events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// True when no non-cancelled events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, "c");
        q.schedule(1.0, "a");
        q.schedule(2.0, "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(1.0, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(5.0, ());
        assert_eq!(q.peek_time(), Some(5.0));
        assert_eq!(q.len(), 1);
    }

    #[test]
    #[should_panic(expected = "must not be NaN")]
    fn rejects_nan_time() {
        let mut q = EventQueue::new();
        let _ = q.schedule(f64::NAN, ());
    }

    #[test]
    fn cancelled_events_never_fire() {
        let mut q = EventQueue::new();
        let _a = q.schedule(1.0, "a");
        let b = q.schedule(2.0, "b");
        let _c = q.schedule(3.0, "c");
        assert!(q.cancel(b));
        assert_eq!(q.len(), 2);
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!["a", "c"]);
    }

    #[test]
    fn cancelling_the_top_updates_peek() {
        let mut q = EventQueue::new();
        let a = q.schedule(1.0, "a");
        let _b = q.schedule(2.0, "b");
        assert!(q.cancel(a));
        assert_eq!(q.peek_time(), Some(2.0));
        assert_eq!(q.pop().map(|e| e.payload), Some("b"));
    }

    #[test]
    fn cancel_is_single_shot_and_fired_safe() {
        let mut q = EventQueue::new();
        let a = q.schedule(1.0, ());
        let b = q.schedule(2.0, ());
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel is a no-op");
        let _ = q.pop();
        assert!(!q.cancel(b), "cancelling a fired event is a no-op");
        assert!(q.is_empty());
    }
}
