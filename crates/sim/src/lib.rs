//! Deterministic discrete-event testbed simulator.
//!
//! The paper's evaluation runs on a 50-client CPU cluster (clients pinned
//! to 4/2/1/0.5/0.1... CPUs) and a distributed LEAF deployment. This
//! crate replaces that hardware with a simulation that preserves what the
//! experiments measure: each simulated device has a CPU share, a network
//! bandwidth and a jitter stream, and a [`latency::LatencyModel`] maps
//! (model FLOPs, sample count, update bytes) to a response latency
//! `L_i`. A training round's latency is `max_i L_i` over the selected
//! clients (Eq. 1) — computed on the [`clock::VirtualClock`], so 500
//! simulated rounds take milliseconds of wall time.
//!
//! The event queue in [`event`] is a general discrete-event core used by
//! the round engine and available for richer simulations (staggered
//! arrivals, mid-round dropouts).

#![forbid(unsafe_code)]

pub mod clock;
pub mod cluster;
pub mod drift;
pub mod dropout;
pub mod event;
pub mod latency;
pub mod resource;

pub use clock::VirtualClock;
pub use cluster::{Cluster, ClusterConfig, GroupSpec};
pub use drift::DriftModel;
pub use latency::{LatencyModel, LatencyModelConfig};
pub use resource::LinkQuality;
