//! A simulated testbed: devices + latency model + availability.

use crate::drift::DriftModel;
use crate::dropout::DropoutModel;
use crate::latency::{LatencyModel, LatencyModelConfig, TrainingTask};
use crate::resource::{DeviceResources, LinkQuality};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use tifl_tensor::split_seed;

/// A homogeneous group of devices (the paper assigns CPUs per group).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GroupSpec {
    /// Number of devices in the group.
    pub count: usize,
    /// CPU share of each device.
    pub cpu_share: f64,
}

/// Testbed construction parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Device groups (e.g. 5 groups of 10 clients at 4/2/1/0.5/0.1 CPUs).
    pub groups: Vec<GroupSpec>,
    /// Link bandwidth of every device in bytes/s.
    pub bandwidth_bps: f64,
    /// Latency-model parameters.
    pub latency: LatencyModelConfig,
    /// If true, device ids are assigned to hardware uniformly at random
    /// (the paper's LEAF extension assigns hardware this way); otherwise
    /// device `i` belongs to group `i / group_size` in order.
    pub shuffle_assignment: bool,
    /// Root seed for jitter and assignment.
    pub seed: u64,
}

impl ClusterConfig {
    /// Equal-sized groups over the given CPU-share profile.
    ///
    /// # Panics
    /// Panics if `total` does not divide evenly by the profile length.
    #[must_use]
    pub fn equal_groups(total: usize, cpu_profile: &[f64], seed: u64) -> Self {
        assert!(
            !cpu_profile.is_empty() && total.is_multiple_of(cpu_profile.len()),
            "total devices must divide evenly into {} groups",
            cpu_profile.len()
        );
        let per = total / cpu_profile.len();
        Self {
            groups: cpu_profile
                .iter()
                .map(|&cpu_share| GroupSpec {
                    count: per,
                    cpu_share,
                })
                .collect(),
            bandwidth_bps: 1_000_000.0,
            latency: LatencyModelConfig::default(),
            shuffle_assignment: false,
            seed,
        }
    }
}

/// The simulated testbed.
#[derive(Debug, Clone)]
pub struct Cluster {
    devices: Vec<DeviceResources>,
    latency: LatencyModel,
    dropout: DropoutModel,
    drift: DriftModel,
    /// Per-device directional links (installed by the comm subsystem);
    /// `None` falls back to each device's symmetric `bandwidth_bps`.
    links: Option<Vec<LinkQuality>>,
    seed: u64,
}

impl Cluster {
    /// Materialise a cluster from a config.
    #[must_use]
    pub fn new(config: &ClusterConfig) -> Self {
        let mut devices: Vec<DeviceResources> = config
            .groups
            .iter()
            .flat_map(|g| {
                std::iter::repeat_n(
                    DeviceResources {
                        cpu_share: g.cpu_share,
                        bandwidth_bps: config.bandwidth_bps,
                    },
                    g.count,
                )
            })
            .collect();
        if config.shuffle_assignment {
            let mut rng = rand::rngs::StdRng::seed_from_u64(split_seed(config.seed, 0xA551));
            devices.shuffle(&mut rng);
        }
        let n = devices.len();
        Self {
            devices,
            latency: LatencyModel::new(config.latency),
            dropout: DropoutModel::always_available(n, split_seed(config.seed, 0xD0D0)),
            drift: DriftModel::None,
            links: None,
            seed: config.seed,
        }
    }

    /// Install a time-varying performance model (see [`DriftModel`]).
    pub fn set_drift(&mut self, drift: DriftModel) {
        self.drift = drift;
    }

    /// Install per-device directional links (the comm subsystem's
    /// refinement of the scalar `bandwidth_bps`). All latency paths —
    /// training rounds, profiling, straggler deadlines — switch to the
    /// directional model.
    ///
    /// # Panics
    /// Panics if the link count does not cover every device.
    pub fn set_links(&mut self, links: Vec<LinkQuality>) {
        assert_eq!(
            links.len(),
            self.devices.len(),
            "link table must cover every device"
        );
        self.links = Some(links);
    }

    /// The link of device `d`: the installed directional link, or the
    /// symmetric legacy fallback over the device's `bandwidth_bps`.
    #[must_use]
    pub fn link_of(&self, d: usize) -> LinkQuality {
        self.links.as_ref().map_or_else(
            || LinkQuality::symmetric(self.devices[d].bandwidth_bps),
            |l| l[d],
        )
    }

    /// Replace the availability model (failure injection).
    pub fn set_dropout(&mut self, dropout: DropoutModel) {
        assert_eq!(
            dropout.num_devices(),
            self.devices.len(),
            "dropout model must cover every device"
        );
        self.dropout = dropout;
    }

    /// Number of devices.
    #[must_use]
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// Resources of device `d`.
    #[must_use]
    pub fn device(&self, d: usize) -> DeviceResources {
        self.devices[d]
    }

    /// The latency model in use.
    #[must_use]
    pub fn latency_model(&self) -> &LatencyModel {
        &self.latency
    }

    /// Response latency of device `d` executing `task` in `round`, or
    /// `None` if the device does not respond this round.
    ///
    /// Deterministic in `(cluster seed, d, round)`: re-simulating the
    /// same round yields the same latency.
    #[must_use]
    pub fn response(&self, d: usize, round: u64, task: &TrainingTask) -> Option<f64> {
        if !self.dropout.responds(d, round) {
            return None;
        }
        let dev = self.devices[d];
        let cpu = dev.cpu_share * self.drift.cpu_scale(d, round);
        let mut rng =
            rand::rngs::StdRng::seed_from_u64(split_seed(self.seed, split_seed(d as u64, round)));
        Some(
            self.latency
                .sample_latency_link(task, cpu, &self.link_of(d), &mut rng),
        )
    }

    /// Jitter-free latency of device `d` for `task` (profiling truth).
    #[must_use]
    pub fn nominal_response(&self, d: usize, task: &TrainingTask) -> f64 {
        let dev = self.devices[d];
        self.latency
            .nominal_latency_link(task, dev.cpu_share, &self.link_of(d))
    }

    /// Round latency (Eq. 1): max response latency over `selected`
    /// devices, with non-responding devices charged `tmax`.
    ///
    /// # Panics
    /// Panics if `selected` is empty.
    #[must_use]
    pub fn round_latency(&self, selected: &[(usize, TrainingTask)], round: u64, tmax: f64) -> f64 {
        assert!(!selected.is_empty(), "round with no selected clients");
        selected
            .iter()
            .map(|(d, task)| self.response(*d, round, task).map_or(tmax, |l| l.min(tmax)))
            .fold(0.0f64, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::profiles;

    fn task() -> TrainingTask {
        TrainingTask {
            samples: 100,
            epochs: 1,
            flops_per_sample: 1_000_000,
            update_bytes: 10_000,
            upload_bytes: None,
        }
    }

    fn cluster() -> Cluster {
        Cluster::new(&ClusterConfig::equal_groups(50, &profiles::CIFAR, 7))
    }

    #[test]
    fn equal_groups_builds_expected_sizes() {
        let c = cluster();
        assert_eq!(c.num_devices(), 50);
        assert_eq!(c.device(0).cpu_share, 4.0);
        assert_eq!(c.device(49).cpu_share, 0.1);
    }

    #[test]
    fn slower_group_has_higher_latency() {
        let c = cluster();
        let fast = c.nominal_response(0, &task());
        let slow = c.nominal_response(49, &task());
        assert!(slow > 10.0 * fast, "fast {fast}, slow {slow}");
    }

    #[test]
    fn response_is_deterministic() {
        let c = cluster();
        assert_eq!(c.response(3, 10, &task()), c.response(3, 10, &task()));
    }

    #[test]
    fn different_rounds_jitter_differently() {
        let c = cluster();
        assert_ne!(c.response(3, 0, &task()), c.response(3, 1, &task()));
    }

    #[test]
    fn round_latency_is_max_of_members() {
        let c = cluster();
        let sel: Vec<(usize, TrainingTask)> = vec![(0, task()), (49, task())];
        let l = c.round_latency(&sel, 0, f64::INFINITY);
        let l49 = c.response(49, 0, &task()).unwrap();
        assert!(
            (l - l49).abs() < 1e-9,
            "round latency should equal slowest member"
        );
    }

    #[test]
    fn dropouts_are_charged_tmax() {
        let mut c = cluster();
        let mut d = DropoutModel::always_available(50, 0);
        d.kill(&[5]);
        c.set_dropout(d);
        assert_eq!(c.response(5, 0, &task()), None);
        let l = c.round_latency(&[(5, task())], 0, 123.0);
        assert_eq!(l, 123.0);
    }

    #[test]
    fn installed_links_change_the_comm_term_only() {
        let mut c = cluster();
        let symmetric = c.response(3, 0, &task()).unwrap();
        // Installing the explicit symmetric link is a no-op, bit for bit.
        let links: Vec<LinkQuality> = (0..50)
            .map(|d| LinkQuality::symmetric(c.device(d).bandwidth_bps))
            .collect();
        c.set_links(links);
        assert_eq!(c.response(3, 0, &task()), Some(symmetric));
        // A 10x slower uplink strictly slows the device down.
        let mut slow: Vec<LinkQuality> = (0..50)
            .map(|d| LinkQuality::symmetric(c.device(d).bandwidth_bps))
            .collect();
        slow[3].up_bps /= 10.0;
        c.set_links(slow);
        assert!(c.response(3, 0, &task()).unwrap() > symmetric);
    }

    #[test]
    #[should_panic(expected = "cover every device")]
    fn set_links_rejects_short_tables() {
        let mut c = cluster();
        c.set_links(vec![LinkQuality::symmetric(1e6); 3]);
    }

    #[test]
    fn shuffle_assignment_permutes_hardware() {
        let mut cfg = ClusterConfig::equal_groups(50, &profiles::CIFAR, 3);
        cfg.shuffle_assignment = true;
        let c = Cluster::new(&cfg);
        // Same multiset of CPU shares, different order than unshuffled.
        let mut shares: Vec<f64> = (0..50).map(|d| c.device(d).cpu_share).collect();
        let first_five: Vec<f64> = shares[..5].to_vec();
        assert!(
            first_five.iter().any(|&s| (s - 4.0).abs() > 1e-12),
            "shuffle left group order intact (unlikely)"
        );
        shares.sort_by(f64::total_cmp);
        let mut expect: Vec<f64> = profiles::CIFAR
            .iter()
            .flat_map(|&s| std::iter::repeat_n(s, 10))
            .collect();
        expect.sort_by(f64::total_cmp);
        assert_eq!(shares, expect);
    }
}
