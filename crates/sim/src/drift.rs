//! Time-varying device performance.
//!
//! §4.2 notes that "profiling and tiering can be conducted periodically
//! for systems with changing computation and communication performance
//! over the time". This module supplies the changing performance: a
//! [`DriftModel`] scales each device's effective CPU share as a
//! deterministic function of `(device, round)`, so experiments can plant
//! a performance change and verify that periodic re-profiling recovers
//! the right tiers.

use serde::{Deserialize, Serialize};

/// Round ids with this bit set denote profiling rounds; drift treats
/// them as the training round they were issued at (the flag is masked
/// off) while the jitter stream still sees a distinct id.
pub const PROFILING_ROUND_FLAG: u64 = 1 << 63;

/// Deterministic multiplicative drift on device CPU shares.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub enum DriftModel {
    /// Performance never changes (the paper's main experiments).
    #[default]
    None,
    /// At `at_round`, device `d`'s CPU share is multiplied by
    /// `factors[d % factors.len()]` and stays there — e.g. a fleet of
    /// phones entering/leaving charging-idle state.
    RegimeSwitch {
        /// Round at which the switch happens.
        at_round: u64,
        /// Per-device multiplicative factors (cycled by device id).
        factors: Vec<f64>,
    },
    /// Smooth periodic load: share is scaled by
    /// `1 + amplitude * sin(2π (round/period + d/devices))`, modelling
    /// diurnal background load with per-device phase offsets.
    Sinusoidal {
        /// Period in rounds.
        period: f64,
        /// Amplitude in `(0, 1)`.
        amplitude: f64,
        /// Number of devices (for phase spreading).
        devices: usize,
    },
}

impl DriftModel {
    /// Effective CPU-share multiplier for device `d` at `round`.
    ///
    /// Profiling round ids (flagged with [`PROFILING_ROUND_FLAG`]) are
    /// mapped back to their underlying training round so a profiler run
    /// at round `r` observes the same regime as training at `r`.
    #[must_use]
    pub fn cpu_scale(&self, d: usize, round: u64) -> f64 {
        let round = round & !PROFILING_ROUND_FLAG;
        match self {
            DriftModel::None => 1.0,
            DriftModel::RegimeSwitch { at_round, factors } => {
                if round >= *at_round && !factors.is_empty() {
                    factors[d % factors.len()]
                } else {
                    1.0
                }
            }
            DriftModel::Sinusoidal {
                period,
                amplitude,
                devices,
            } => {
                assert!(*period > 0.0, "period must be positive");
                assert!((0.0..1.0).contains(amplitude), "amplitude must be in [0,1)");
                let phase = d as f64 / (*devices).max(1) as f64;
                1.0 + amplitude
                    * (2.0 * std::f64::consts::PI * (round as f64 / period + phase)).sin()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_identity() {
        let d = DriftModel::None;
        assert_eq!(d.cpu_scale(0, 0), 1.0);
        assert_eq!(d.cpu_scale(5, 1000), 1.0);
    }

    #[test]
    fn regime_switch_applies_after_round() {
        let d = DriftModel::RegimeSwitch {
            at_round: 100,
            factors: vec![0.5, 2.0],
        };
        assert_eq!(d.cpu_scale(0, 99), 1.0);
        assert_eq!(d.cpu_scale(0, 100), 0.5);
        assert_eq!(d.cpu_scale(1, 100), 2.0);
        assert_eq!(d.cpu_scale(2, 500), 0.5);
    }

    #[test]
    fn profiling_flag_maps_to_training_round() {
        let d = DriftModel::RegimeSwitch {
            at_round: 100,
            factors: vec![0.5],
        };
        // A profiling round issued at training round 50 sees the old
        // regime; one issued at 200 sees the new regime.
        assert_eq!(d.cpu_scale(0, 50 | PROFILING_ROUND_FLAG), 1.0);
        assert_eq!(d.cpu_scale(0, 200 | PROFILING_ROUND_FLAG), 0.5);
    }

    #[test]
    fn sinusoidal_stays_positive_and_periodic() {
        let d = DriftModel::Sinusoidal {
            period: 50.0,
            amplitude: 0.3,
            devices: 10,
        };
        for r in 0..200 {
            let s = d.cpu_scale(3, r);
            assert!(
                s > 0.0 && (0.69..=1.31).contains(&s),
                "scale {s} at round {r}"
            );
        }
        let a = d.cpu_scale(3, 7);
        let b = d.cpu_scale(3, 57);
        assert!((a - b).abs() < 1e-9, "period 50 should repeat");
    }

    #[test]
    fn devices_have_distinct_phases() {
        let d = DriftModel::Sinusoidal {
            period: 50.0,
            amplitude: 0.3,
            devices: 10,
        };
        assert_ne!(d.cpu_scale(0, 10), d.cpu_scale(5, 10));
    }
}
