//! Virtual time.

use serde::{Deserialize, Serialize};

/// A monotonically non-decreasing virtual clock in seconds.
///
/// All "training time" numbers in the reproduction are read off this
/// clock, so experiments that would take days on a real testbed finish
/// in milliseconds while preserving every latency ratio.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct VirtualClock {
    now: f64,
}

impl VirtualClock {
    /// A clock at time zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time in seconds.
    #[must_use]
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Advance by `dt` seconds.
    ///
    /// # Panics
    /// Panics if `dt` is negative or not finite.
    pub fn advance(&mut self, dt: f64) {
        assert!(
            dt.is_finite() && dt >= 0.0,
            "clock advance must be finite and >= 0, got {dt}"
        );
        self.now += dt;
    }

    /// Jump to an absolute time.
    ///
    /// # Panics
    /// Panics if `t` would move the clock backwards.
    pub fn advance_to(&mut self, t: f64) {
        assert!(
            t >= self.now,
            "clock cannot move backwards ({t} < {})",
            self.now
        );
        self.now = t;
    }

    /// Reset to zero (new experiment).
    pub fn reset(&mut self) {
        self.now = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_advances() {
        let mut c = VirtualClock::new();
        assert_eq!(c.now(), 0.0);
        c.advance(1.5);
        c.advance(0.5);
        assert!((c.now() - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "cannot move backwards")]
    fn advance_to_rejects_past() {
        let mut c = VirtualClock::new();
        c.advance(5.0);
        c.advance_to(1.0);
    }

    #[test]
    #[should_panic(expected = "finite and >= 0")]
    fn advance_rejects_negative() {
        let mut c = VirtualClock::new();
        c.advance(-1.0);
    }

    #[test]
    fn reset_returns_to_zero() {
        let mut c = VirtualClock::new();
        c.advance(3.0);
        c.reset();
        assert_eq!(c.now(), 0.0);
    }
}
