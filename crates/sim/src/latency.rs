//! Response-latency model.
//!
//! The paper defines a client's response latency `L_i` as the time
//! between receiving the training task and returning the results, and a
//! round's latency as `max_i L_i` (Eq. 1). This module maps a training
//! task to `L_i`:
//!
//! ```text
//! L_i = compute + communication + jitter
//! compute       = samples * epochs * flops_per_sample
//!                 / (flops_per_cpu_sec * cpu_share)
//! communication = update_bytes / down_bps        (global model down)
//!               + upload_bytes / up_bps          (trained update up)
//!               + rtt
//! jitter        = multiplicative lognormal noise
//! ```
//!
//! The legacy scalar-bandwidth entry points ([`LatencyModel::nominal_latency`]
//! and friends) are the symmetric special case `up = down = bandwidth`,
//! `upload = update_bytes`, `rtt = 0`, which reduces the communication
//! term to the historical `2 * update_bytes / bandwidth` — bit for bit,
//! since `x + x == 2 * x` in IEEE arithmetic. Asymmetric links and
//! compressed uploads come from `tifl_comm` through
//! [`LatencyModel::nominal_latency_link`].
//!
//! Fig. 1(a)'s two observations fall straight out of this model: latency
//! is linear in sample count at fixed CPU share, and inversely
//! proportional to CPU share at fixed data size.

use crate::resource::LinkQuality;
use rand::rngs::StdRng;
use rand_distr::{Distribution, LogNormal};
use serde::{Deserialize, Serialize};

/// Parameters of the latency model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyModelConfig {
    /// Sustained throughput of one full CPU share, in FLOP/s. The
    /// default (50 MFLOP/s) makes the §3.3 case-study numbers land in
    /// the paper's 2–250 s/round range.
    pub flops_per_cpu_sec: f64,
    /// Sigma of the multiplicative lognormal jitter (0 disables jitter).
    pub jitter_sigma: f64,
    /// Fixed per-round protocol overhead in seconds (task dispatch,
    /// connection setup).
    pub base_overhead_sec: f64,
}

impl Default for LatencyModelConfig {
    fn default() -> Self {
        Self {
            flops_per_cpu_sec: 5.0e7,
            jitter_sigma: 0.05,
            base_overhead_sec: 0.2,
        }
    }
}

/// A task to be timed: one local-training invocation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainingTask {
    /// Local samples processed per epoch.
    pub samples: usize,
    /// Local epochs (the paper uses 1).
    pub epochs: usize,
    /// Model cost per sample (forward + backward), in FLOPs.
    pub flops_per_sample: u64,
    /// Serialized model-update size in bytes (the full-precision model
    /// the server ships down).
    pub update_bytes: u64,
    /// Bytes the client uploads after training — the *encoded* wire
    /// size when an update codec is active. `None` means uncompressed
    /// (`update_bytes` both ways, the legacy symmetric behaviour).
    #[serde(default)]
    pub upload_bytes: Option<u64>,
}

impl TrainingTask {
    /// Bytes crossing the uplink ([`TrainingTask::update_bytes`] unless
    /// an encoded size is set).
    #[must_use]
    pub fn upload(&self) -> u64 {
        self.upload_bytes.unwrap_or(self.update_bytes)
    }
}

/// Deterministic latency model (given an RNG for the jitter stream).
#[derive(Debug, Clone)]
pub struct LatencyModel {
    config: LatencyModelConfig,
    jitter: Option<LogNormal<f64>>,
}

impl LatencyModel {
    /// Build from a config.
    ///
    /// # Panics
    /// Panics if the config contains non-positive throughput.
    #[must_use]
    pub fn new(config: LatencyModelConfig) -> Self {
        assert!(
            config.flops_per_cpu_sec > 0.0,
            "throughput must be positive"
        );
        assert!(config.jitter_sigma >= 0.0, "jitter sigma must be >= 0");
        let jitter = if config.jitter_sigma > 0.0 {
            // Mean-1 lognormal: mu = -sigma^2/2.
            let sigma = config.jitter_sigma;
            Some(LogNormal::new(-sigma * sigma / 2.0, sigma).expect("valid lognormal"))
        } else {
            None
        };
        Self { config, jitter }
    }

    /// The model's configuration.
    #[must_use]
    pub fn config(&self) -> &LatencyModelConfig {
        &self.config
    }

    /// Deterministic (jitter-free) latency for a task on a device.
    ///
    /// # Panics
    /// Panics if `cpu_share` or `bandwidth_bps` is not positive.
    #[must_use]
    pub fn nominal_latency(&self, task: &TrainingTask, cpu_share: f64, bandwidth_bps: f64) -> f64 {
        self.nominal_latency_link(task, cpu_share, &LinkQuality::symmetric(bandwidth_bps))
    }

    /// Deterministic latency for a task on a device behind a directional
    /// link: download of the global model at `down_bps`, upload of the
    /// (possibly encoded) update at `up_bps`, plus the link's RTT.
    ///
    /// # Panics
    /// Panics if `cpu_share` or either bandwidth is not positive.
    #[must_use]
    pub fn nominal_latency_link(
        &self,
        task: &TrainingTask,
        cpu_share: f64,
        link: &LinkQuality,
    ) -> f64 {
        assert!(cpu_share > 0.0, "cpu_share must be positive");
        assert!(link.up_bps > 0.0, "bandwidth must be positive");
        assert!(link.down_bps > 0.0, "bandwidth must be positive");
        assert!(link.rtt_sec >= 0.0, "rtt must be >= 0");
        let flops = task.samples as f64 * task.epochs as f64 * task.flops_per_sample as f64;
        let compute = flops / (self.config.flops_per_cpu_sec * cpu_share);
        let comm = task.update_bytes as f64 / link.down_bps
            + task.upload() as f64 / link.up_bps
            + link.rtt_sec;
        self.config.base_overhead_sec + compute + comm
    }

    /// Latency with multiplicative jitter drawn from `rng`.
    #[must_use]
    pub fn sample_latency(
        &self,
        task: &TrainingTask,
        cpu_share: f64,
        bandwidth_bps: f64,
        rng: &mut StdRng,
    ) -> f64 {
        self.sample_latency_link(task, cpu_share, &LinkQuality::symmetric(bandwidth_bps), rng)
    }

    /// As [`LatencyModel::nominal_latency_link`] with multiplicative
    /// jitter drawn from `rng`.
    #[must_use]
    pub fn sample_latency_link(
        &self,
        task: &TrainingTask,
        cpu_share: f64,
        link: &LinkQuality,
        rng: &mut StdRng,
    ) -> f64 {
        let nominal = self.nominal_latency_link(task, cpu_share, link);
        match &self.jitter {
            Some(dist) => nominal * dist.sample(rng),
            None => nominal,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn task(samples: usize) -> TrainingTask {
        TrainingTask {
            samples,
            epochs: 1,
            flops_per_sample: 1_000_000,
            update_bytes: 100_000,
            upload_bytes: None,
        }
    }

    fn model(jitter: f64) -> LatencyModel {
        LatencyModel::new(LatencyModelConfig {
            flops_per_cpu_sec: 1.0e6,
            jitter_sigma: jitter,
            base_overhead_sec: 0.0,
        })
    }

    #[test]
    fn latency_linear_in_samples() {
        let m = model(0.0);
        let l1 = m.nominal_latency(&task(100), 1.0, 1e9);
        let l2 = m.nominal_latency(&task(200), 1.0, 1e9);
        assert!((l2 / l1 - 2.0).abs() < 0.01, "ratio {}", l2 / l1);
    }

    #[test]
    fn latency_inverse_in_cpu_share() {
        let m = model(0.0);
        let fast = m.nominal_latency(&task(100), 4.0, 1e9);
        let slow = m.nominal_latency(&task(100), 0.1, 1e9);
        assert!((slow / fast - 40.0).abs() < 0.5, "ratio {}", slow / fast);
    }

    #[test]
    fn communication_term_counts_both_directions() {
        let m = model(0.0);
        let t = TrainingTask {
            samples: 0,
            epochs: 1,
            flops_per_sample: 0,
            update_bytes: 500,
            upload_bytes: None,
        };
        let l = m.nominal_latency(&t, 1.0, 1000.0);
        assert!((l - 1.0).abs() < 1e-9, "2*500/1000 = 1s, got {l}");
    }

    #[test]
    fn symmetric_link_is_bitwise_equal_to_scalar_bandwidth() {
        // The legacy entry point is the symmetric special case — not
        // approximately, bit for bit (the engine's Identity-codec
        // equivalence contract rests on this).
        let m = model(0.3);
        for bw in [1000.0, 1.0e6, 3.7e7] {
            let t = task(137);
            let legacy = m.nominal_latency(&t, 0.7, bw);
            let link = m.nominal_latency_link(&t, 0.7, &LinkQuality::symmetric(bw));
            assert_eq!(legacy.to_bits(), link.to_bits());
        }
    }

    #[test]
    fn asymmetric_uplink_dominates_when_slow() {
        let m = model(0.0);
        let t = TrainingTask {
            samples: 0,
            epochs: 1,
            flops_per_sample: 0,
            update_bytes: 1000,
            upload_bytes: None,
        };
        let slow_up = LinkQuality {
            up_bps: 100.0,
            down_bps: 10_000.0,
            rtt_sec: 0.0,
        };
        let l = m.nominal_latency_link(&t, 1.0, &slow_up);
        assert!((l - (0.1 + 10.0)).abs() < 1e-9, "got {l}");
    }

    #[test]
    fn compressed_upload_shrinks_the_uplink_term() {
        let m = model(0.0);
        let full = TrainingTask {
            samples: 0,
            epochs: 1,
            flops_per_sample: 0,
            update_bytes: 4000,
            upload_bytes: None,
        };
        let compressed = TrainingTask {
            upload_bytes: Some(1000),
            ..full
        };
        let link = LinkQuality {
            up_bps: 1000.0,
            down_bps: 1000.0,
            rtt_sec: 0.5,
        };
        let lf = m.nominal_latency_link(&full, 1.0, &link);
        let lc = m.nominal_latency_link(&compressed, 1.0, &link);
        assert!((lf - (4.0 + 4.0 + 0.5)).abs() < 1e-9, "full {lf}");
        assert!((lc - (4.0 + 1.0 + 0.5)).abs() < 1e-9, "compressed {lc}");
    }

    #[test]
    fn jitter_is_mean_preserving() {
        let m = model(0.2);
        let mut rng = StdRng::seed_from_u64(0);
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| m.sample_latency(&task(100), 1.0, 1e9, &mut rng))
            .sum::<f64>()
            / f64::from(n);
        let nominal = m.nominal_latency(&task(100), 1.0, 1e9);
        assert!(
            (mean / nominal - 1.0).abs() < 0.02,
            "jitter shifted the mean: {mean} vs {nominal}"
        );
    }

    #[test]
    fn jitter_deterministic_per_seed() {
        let m = model(0.3);
        let a = m.sample_latency(&task(10), 1.0, 1e9, &mut StdRng::seed_from_u64(9));
        let b = m.sample_latency(&task(10), 1.0, 1e9, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "cpu_share must be positive")]
    fn rejects_zero_cpu() {
        let m = model(0.0);
        let _ = m.nominal_latency(&task(1), 0.0, 1e9);
    }
}
