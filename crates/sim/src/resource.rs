//! Device resource descriptions and the paper's hardware profiles.

use serde::{Deserialize, Serialize};

/// Compute and communication resources of one simulated device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceResources {
    /// Fraction of a reference CPU available to local training (the
    /// paper pins clients to 4, 2, 1, 0.5, 0.1... CPUs).
    pub cpu_share: f64,
    /// Uplink/downlink bandwidth in bytes per second.
    pub bandwidth_bps: f64,
}

impl DeviceResources {
    /// Device with `cpu_share` CPUs and the default 1 MB/s link.
    #[must_use]
    pub fn with_cpus(cpu_share: f64) -> Self {
        Self {
            cpu_share,
            bandwidth_bps: 1_000_000.0,
        }
    }
}

/// Directional link quality of one device: the communication-model
/// refinement of the scalar [`DeviceResources::bandwidth_bps`].
///
/// Real fleets are uplink-constrained (ADSL/LTE uplinks run 5–20x below
/// their downlinks), and the paper's whole tiering story rests on
/// response latency being dominated by transferring model updates —
/// so the comm subsystem (`tifl_comm`) models the two directions and a
/// round-trip setup cost separately.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkQuality {
    /// Client → server bandwidth in bytes/s.
    pub up_bps: f64,
    /// Server → client bandwidth in bytes/s.
    pub down_bps: f64,
    /// Fixed per-transfer round-trip cost in seconds (connection setup,
    /// propagation).
    pub rtt_sec: f64,
}

impl LinkQuality {
    /// The legacy link shape: the same bandwidth both ways, no RTT.
    /// Latencies computed through a symmetric link are bit-for-bit the
    /// scalar-bandwidth model's (`up + down == 2 * bytes / bps`).
    #[must_use]
    pub fn symmetric(bps: f64) -> Self {
        Self {
            up_bps: bps,
            down_bps: bps,
            rtt_sec: 0.0,
        }
    }
}

/// The paper's per-group CPU allocations (§3.3 and §5.1).
pub mod profiles {
    /// §3.3 case study: 4, 2, 1, 1/3, 1/5 CPUs across 5 groups.
    pub const CASE_STUDY: [f64; 5] = [4.0, 2.0, 1.0, 1.0 / 3.0, 1.0 / 5.0];

    /// §5.1 MNIST / Fashion-MNIST: 2, 1, 0.75, 0.5, 0.25 CPUs.
    pub const MNIST: [f64; 5] = [2.0, 1.0, 0.75, 0.5, 0.25];

    /// §5.1 CIFAR-10 / FEMNIST: 4, 2, 1, 0.5, 0.1 CPUs.
    pub const CIFAR: [f64; 5] = [4.0, 2.0, 1.0, 0.5, 0.1];

    /// Homogeneous baseline used in the data-heterogeneity-only
    /// experiments: 2 CPUs for every client.
    pub const HOMOGENEOUS: [f64; 1] = [2.0];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_are_decreasing() {
        for p in [
            &profiles::CASE_STUDY[..],
            &profiles::MNIST[..],
            &profiles::CIFAR[..],
        ] {
            for w in p.windows(2) {
                assert!(w[0] > w[1], "profile not strictly decreasing: {p:?}");
            }
        }
    }

    #[test]
    fn cifar_profile_spans_40x() {
        let p = profiles::CIFAR;
        assert!((p[0] / p[4] - 40.0).abs() < 1e-9);
    }

    #[test]
    fn with_cpus_sets_default_bandwidth() {
        let d = DeviceResources::with_cpus(0.5);
        assert_eq!(d.cpu_share, 0.5);
        assert!(d.bandwidth_bps > 0.0);
    }
}
