//! Client unavailability injection.
//!
//! The paper's profiler must tolerate clients that never answer within
//! `Tmax` (they are marked dropouts after `sync_rounds` timeouts, §4.2).
//! This module provides the failure source: a per-device Bernoulli
//! process that decides, per round, whether the device responds at all.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use tifl_tensor::split_seed;

/// Per-device availability model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DropoutModel {
    /// `fail_prob[d]` is the probability device `d` does not respond in a
    /// given round (1.0 = permanently dead device).
    fail_prob: Vec<f64>,
    seed: u64,
}

impl DropoutModel {
    /// All devices always available.
    #[must_use]
    pub fn always_available(devices: usize, seed: u64) -> Self {
        Self {
            fail_prob: vec![0.0; devices],
            seed,
        }
    }

    /// Explicit per-device failure probabilities.
    ///
    /// # Panics
    /// Panics if any probability is outside `[0, 1]`.
    #[must_use]
    pub fn from_probs(fail_prob: Vec<f64>, seed: u64) -> Self {
        assert!(
            fail_prob.iter().all(|&p| (0.0..=1.0).contains(&p)),
            "failure probabilities must be in [0,1]"
        );
        Self { fail_prob, seed }
    }

    /// Mark a set of devices as permanently dead (they never respond,
    /// exercising the profiler's dropout-exclusion path).
    pub fn kill(&mut self, devices: &[usize]) {
        for &d in devices {
            self.fail_prob[d] = 1.0;
        }
    }

    /// Number of devices covered by the model.
    #[must_use]
    pub fn num_devices(&self) -> usize {
        self.fail_prob.len()
    }

    /// Does device `d` respond in round `r`? Deterministic in
    /// `(seed, d, r)`.
    #[must_use]
    pub fn responds(&self, d: usize, round: u64) -> bool {
        let p = self.fail_prob[d];
        if p <= 0.0 {
            return true;
        }
        if p >= 1.0 {
            return false;
        }
        let mut rng = StdRng::seed_from_u64(split_seed(self.seed, split_seed(d as u64, round)));
        rng.gen::<f64>() >= p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_available_never_fails() {
        let m = DropoutModel::always_available(5, 0);
        for d in 0..5 {
            for r in 0..20 {
                assert!(m.responds(d, r));
            }
        }
    }

    #[test]
    fn killed_devices_never_respond() {
        let mut m = DropoutModel::always_available(3, 0);
        m.kill(&[1]);
        assert!(m.responds(0, 0));
        assert!(!m.responds(1, 0));
        assert!(!m.responds(1, 99));
    }

    #[test]
    fn partial_failure_rate_approximates_p() {
        let m = DropoutModel::from_probs(vec![0.3], 7);
        let fails = (0..10_000).filter(|&r| !m.responds(0, r)).count();
        let rate = fails as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.02, "empirical failure rate {rate}");
    }

    #[test]
    fn responds_is_deterministic() {
        let m = DropoutModel::from_probs(vec![0.5, 0.5], 3);
        for d in 0..2 {
            for r in 0..50 {
                assert_eq!(m.responds(d, r), m.responds(d, r));
            }
        }
    }

    #[test]
    #[should_panic(expected = "must be in [0,1]")]
    fn rejects_bad_probability() {
        let _ = DropoutModel::from_probs(vec![1.5], 0);
    }
}
