//! The communication subsystem's contract:
//!
//! 1. the Identity codec over the cluster-default link model is
//!    *bit-for-bit* the legacy uncompressed run — reports, times and
//!    final weights — on every pinned `RunSpec` scenario, for both
//!    execution backends and any thread count;
//! 2. on any *other* link model, Identity changes timing (and, through
//!    it, nothing else under `WaitAll`): the accuracy trajectory is
//!    unchanged while round latencies move with the links;
//! 3. every codec is backend-invariant (`EventDriven{1,4}` ==
//!    `Lockstep`, bit for bit);
//! 4. lossy codecs ship strictly fewer uplink bytes than Identity and
//!    their accuracy curves stay within a pinned tolerance of the
//!    uncompressed run on the §5.1 `cifar10_resource_het` topology;
//! 5. bandwidth-heterogeneous links shape tier assignment exactly like
//!    CPU heterogeneity does (profiling is payload- and link-aware);
//! 6. hierarchical aggregation adds its combine cost — in the same
//!    transfer-seconds units — to every synchronous round.

use proptest::prelude::*;
use tifl::prelude::*;
use tifl::tensor::ParamVec;

fn tiny(seed: u64) -> ExperimentConfig {
    ExperimentConfig::tiny(seed)
}

/// The same scenario grid `tests/runspec.rs` pins for backend
/// equivalence, reused here for comm equivalence.
fn scenarios() -> Vec<(&'static str, ExperimentConfig, RunSpec)> {
    vec![
        ("vanilla", tiny(70), RunSpec::default()),
        (
            "uniform-policy",
            tiny(70),
            RunSpec {
                selection: SelectionStrategy::TierPolicy {
                    policy: Policy::uniform(5),
                },
                ..RunSpec::default()
            },
        ),
        (
            "adaptive",
            tiny(72),
            RunSpec {
                selection: SelectionStrategy::Adaptive { config: None },
                ..RunSpec::default()
            },
        ),
        (
            "overselect",
            tiny(74),
            RunSpec {
                aggregation: Some(AggregationMode::FirstK { factor: 1.5 }),
                ..RunSpec::default()
            },
        ),
        (
            "fedprox",
            tiny(75),
            RunSpec {
                local: LocalTraining::FedProx { mu: 0.25 },
                ..RunSpec::default()
            },
        ),
        (
            "uniform+reprofile",
            {
                let mut cfg = tiny(76);
                cfg.rounds = 16;
                cfg
            },
            RunSpec {
                selection: SelectionStrategy::TierPolicy {
                    policy: Policy::uniform(5),
                },
                reprofile_every: Some(4),
                ..RunSpec::default()
            },
        ),
    ]
}

// -- 1. Identity × ClusterDefault is the legacy run, bit for bit -----------

#[test]
fn identity_comm_is_bit_for_bit_legacy_on_every_scenario() {
    for (name, cfg, spec) in scenarios() {
        let (legacy, legacy_session) = Runner::with_spec(&cfg, spec.clone()).run_with_session();
        let identity_spec = RunSpec {
            comm: Some(CommSpec::default()),
            ..spec.clone()
        };
        let (identity, identity_session) =
            Runner::with_spec(&cfg, identity_spec.clone()).run_with_session();
        assert_eq!(
            legacy, identity,
            "{name}: identity comm diverged (lockstep)"
        );
        assert_eq!(
            legacy_session.global_params(),
            identity_session.global_params(),
            "{name}: identity comm changed the final weights"
        );
        for threads in [1usize, 4] {
            let event = Runner::with_spec(
                &cfg,
                RunSpec {
                    backend: ExecBackend::EventDriven { threads },
                    ..identity_spec.clone()
                },
            )
            .run();
            assert_eq!(
                legacy, event,
                "{name}: identity comm on EventDriven{{{threads}}} diverged"
            );
        }
    }
}

// -- 2. other link models move time, not training ---------------------------

#[test]
fn identity_on_any_link_model_changes_timing_only_under_waitall() {
    // Under WaitAll with an unreachable Tmax, links decide *when*
    // updates arrive, never *which* or *what* — so any link model
    // leaves the accuracy trajectory and selections bit-identical and
    // only moves the clock.
    let cfg = tiny(91);
    let links = [
        LinkModel::Uniform {
            up_bps: 2.0e4,
            down_bps: 2.0e5,
            rtt_sec: 0.05,
        },
        LinkModel::LogNormal {
            median_up_bps: 5.0e4,
            median_down_bps: 5.0e5,
            sigma: 0.8,
            rtt_sec: 0.01,
        },
        LinkModel::GroupScaled {
            groups: 5,
            up_bps: 1.0e6,
            down_bps: 1.0e6,
            decay: 0.25,
            rtt_sec: 0.0,
        },
    ];
    let baseline = cfg.runner().run();
    for link in links {
        let run = Runner::with_spec(
            &cfg,
            RunSpec {
                comm: Some(CommSpec {
                    link,
                    ..CommSpec::default()
                }),
                ..RunSpec::default()
            },
        )
        .run();
        assert_eq!(
            baseline.accuracy_over_rounds(),
            run.accuracy_over_rounds(),
            "{link:?}: accuracy trajectory moved"
        );
        for (a, b) in baseline.rounds.iter().zip(&run.rounds) {
            assert_eq!(a.selected, b.selected, "{link:?}: selection moved");
            assert_eq!(a.aggregated, b.aggregated, "{link:?}: contributors moved");
        }
        assert_ne!(
            baseline
                .rounds
                .iter()
                .map(|r| r.latency.to_bits())
                .collect::<Vec<_>>(),
            run.rounds
                .iter()
                .map(|r| r.latency.to_bits())
                .collect::<Vec<_>>(),
            "{link:?}: latencies should move with the links"
        );
    }
}

// -- 3. every codec is backend-invariant ------------------------------------

#[test]
fn every_codec_is_backend_invariant() {
    let codecs = [
        CodecSpec::Identity,
        CodecSpec::QuantizeI8,
        CodecSpec::TopK { frac: 0.1 },
    ];
    for codec in codecs {
        // Over-selection stresses the engine's straggler cancellation
        // alongside the decode-and-fold path.
        let cfg = tiny(92);
        let spec = RunSpec {
            aggregation: Some(AggregationMode::FirstK { factor: 1.5 }),
            comm: Some(CommSpec::with_codec(codec)),
            ..RunSpec::default()
        };
        let (lockstep, lockstep_session) = Runner::with_spec(&cfg, spec.clone()).run_with_session();
        for threads in [1usize, 4] {
            let (event, event_session) = Runner::with_spec(
                &cfg,
                RunSpec {
                    backend: ExecBackend::EventDriven { threads },
                    ..spec.clone()
                },
            )
            .run_with_session();
            assert_eq!(
                lockstep, event,
                "{codec:?}: EventDriven{{{threads}}} diverged from Lockstep"
            );
            assert_eq!(
                lockstep_session.global_params(),
                event_session.global_params(),
                "{codec:?}: final weights diverged on {threads} threads"
            );
        }
    }
}

// -- 4. lossy codecs: fewer bytes, pinned accuracy --------------------------

#[test]
fn compressed_runs_pin_accuracy_on_cifar10_resource_het() {
    // The §5.1 topology (50 clients, CPUs 4/2/1/0.5/0.1, |C| = 5) at a
    // test-sized horizon. Selection and contributors are
    // codec-independent (WaitAll, unreachable Tmax), so the accuracy
    // series compare point-for-point. Stated tolerances: int8
    // quantization is visually indistinguishable from uncompressed
    // (±0.02 everywhere); top-k(0.25) trades a slower early transient
    // (up to 0.2 below mid-curve) for a final accuracy within 0.05 —
    // the classic sparsified-FL shape.
    let mut cfg = ExperimentConfig::cifar10_resource_het(7);
    cfg.rounds = 60;
    cfg.eval_every = 5;
    cfg.data = DataScenario::Iid { per_client: 100 };
    let run = |codec: CodecSpec| {
        Runner::with_spec(
            &cfg,
            RunSpec {
                comm: Some(CommSpec::with_codec(codec)),
                ..RunSpec::default()
            },
        )
        .run()
    };
    // top-k(0.1) is the regression pin for error feedback: without
    // residual compensation this setting collapsed to ~0.20 final
    // accuracy vs ~0.42 uncompressed (see BENCH_comm_sweep.json history)
    // because 90% of every update was dropped forever. With EF the
    // dropped mass is flushed over later rounds, so the curve recovers
    // to within the same envelope as top-k(0.25).
    let identity = run(CodecSpec::Identity);
    for (codec, round_tol, final_tol) in [
        (CodecSpec::QuantizeI8, 0.02, 0.02),
        (CodecSpec::TopK { frac: 0.25 }, 0.2, 0.05),
        (CodecSpec::TopK { frac: 0.1 }, 0.25, 0.05),
    ] {
        let compressed = run(codec);
        // Strictly fewer uplink bytes, identical downlink.
        assert!(
            compressed.total_bytes_up() < identity.total_bytes_up(),
            "{codec:?}: {} !< {}",
            compressed.total_bytes_up(),
            identity.total_bytes_up()
        );
        assert_eq!(compressed.total_bytes_down(), identity.total_bytes_down());
        let id_curve = identity.accuracy_over_rounds();
        let comp_curve = compressed.accuracy_over_rounds();
        assert_eq!(id_curve.len(), comp_curve.len());
        for ((r, a), (r2, b)) in id_curve.iter().zip(&comp_curve) {
            assert_eq!(r, r2);
            assert!(
                (a - b).abs() <= round_tol,
                "{codec:?}: round {r} accuracy {b} vs uncompressed {a}"
            );
        }
        assert!(
            (identity.final_accuracy() - compressed.final_accuracy()).abs() <= final_tol,
            "{codec:?}: final {} vs {}",
            compressed.final_accuracy(),
            identity.final_accuracy()
        );
    }
}

#[test]
fn quantized_labels_and_bytes_flow_through_the_report() {
    let cfg = tiny(93);
    let report = cfg.runner().quantized_i8().run();
    assert_eq!(report.policy, "vanilla+i8");
    let model_params = 64 * 16 + 16 + 16 * 10 + 10; // tiny's MLP
    let per_upload = model_params as u64 + 8;
    let uploads: u64 = report
        .rounds
        .iter()
        .map(|r| r.aggregated.len() as u64)
        .sum();
    assert_eq!(report.total_bytes_up(), per_upload * uploads);
    assert_eq!(
        report.total_bytes_down(),
        4 * model_params as u64
            * report
                .rounds
                .iter()
                .map(|r| r.selected.len() as u64)
                .sum::<u64>()
    );
}

// -- 5. bandwidth heterogeneity shapes tiers --------------------------------

#[test]
fn bandwidth_heterogeneous_links_shape_tier_assignment() {
    // Homogeneous CPUs, tiered bandwidth: profiling must order tiers by
    // link speed alone — the comm-model analogue of the paper's
    // CPU-share tiering, previously inexpressible.
    let mut cfg = tiny(94);
    cfg.cpu_profile = vec![2.0]; // identical compute everywhere
    cfg.comm = Some(CommSpec {
        link: LinkModel::GroupScaled {
            groups: 5,
            up_bps: 1.0e6,
            down_bps: 1.0e6,
            decay: 0.25,
            rtt_sec: 0.0,
        },
        ..CommSpec::default()
    });
    let mut runner = cfg.runner();
    let tiers = runner.tiers().clone();
    assert_eq!(tiers.num_tiers(), 5);
    // 10 clients, 5 bandwidth groups of 2: tier t must hold exactly
    // bandwidth group t (clients 2t and 2t+1).
    for t in 0..5 {
        let mut members = tiers.tiers[t].clients.clone();
        members.sort_unstable();
        assert_eq!(members, vec![2 * t, 2 * t + 1], "tier {t}");
    }
    // A fast-tier policy then beats a slow-tier policy on wall time,
    // purely through bandwidth.
    let fast = runner.policy(&Policy::fast(5)).run().total_time();
    let slow = runner.policy(&Policy::slow(5)).run().total_time();
    assert!(slow > 2.0 * fast, "slow {slow} vs fast {fast}");
}

#[test]
fn compressed_uploads_speed_up_bandwidth_bound_rounds() {
    // When the wire dominates (slow uplinks), quantization must cut
    // round latency nearly 4x; top-k(0.1) nearly 5x.
    let mut cfg = tiny(95);
    cfg.latency.base_overhead_sec = 0.0;
    cfg.latency.flops_per_cpu_sec = 1.0e12; // compute ~ free
    let time = |codec: CodecSpec| {
        Runner::with_spec(
            &cfg,
            RunSpec {
                comm: Some(CommSpec {
                    codec,
                    link: LinkModel::Uniform {
                        up_bps: 1.0e4,
                        down_bps: 1.0e7,
                        rtt_sec: 0.0,
                    },
                    hierarchy: None,
                }),
                ..RunSpec::default()
            },
        )
        .run()
        .total_time()
    };
    let identity = time(CodecSpec::Identity);
    let quant = time(CodecSpec::QuantizeI8);
    let topk = time(CodecSpec::TopK { frac: 0.1 });
    assert!(
        quant < identity / 3.0,
        "quantization should cut uplink-bound time ~4x: {quant} vs {identity}"
    );
    assert!(
        topk < identity / 4.0,
        "top-k(0.1) should cut uplink-bound time ~5x: {topk} vs {identity}"
    );
}

// -- 6. hierarchical aggregation --------------------------------------------

#[test]
fn hierarchical_aggregation_is_a_runspec_reachable_scenario() {
    let cfg = tiny(96);
    let flat = cfg.runner().run();
    let mut runner = cfg.runner();
    let hier = runner.hierarchical(2, 1.0e6).run();
    // Same training outcome (the hierarchy is a latency model; the
    // numerics stay the canonical fold)...
    assert_eq!(flat.accuracy_over_rounds(), hier.accuracy_over_rounds());
    // ... with the combine cost added to every round.
    for (f, h) in flat.rounds.iter().zip(&hier.rounds) {
        assert_eq!(f.selected, h.selected);
        assert!(
            h.latency > f.latency,
            "round {}: hierarchy should add combine latency",
            f.round
        );
    }
    // And it stays backend-invariant like everything else.
    let event = Runner::with_spec(
        &cfg,
        RunSpec {
            backend: ExecBackend::EventDriven { threads: 4 },
            ..runner.spec().clone()
        },
    )
    .run();
    assert_eq!(hier, event);
}

// -- CLI ---------------------------------------------------------------------

#[test]
fn spec_cli_runs_a_compressed_bandwidth_het_request() {
    let request = RunRequest {
        experiment: tiny(97),
        rounds: Some(5),
        seed: None,
        clients_per_round: None,
        spec: RunSpec {
            comm: Some(CommSpec {
                codec: CodecSpec::QuantizeI8,
                link: LinkModel::GroupScaled {
                    groups: 5,
                    up_bps: 1.0e6,
                    down_bps: 1.0e6,
                    decay: 0.5,
                    rtt_sec: 0.01,
                },
                hierarchy: None,
            }),
            ..RunSpec::default()
        },
    };
    let dir = std::env::temp_dir().join(format!("tifl-comm-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("run.json");
    std::fs::write(&path, serde_json::to_string_pretty(&request).unwrap()).expect("write spec");

    let out = std::process::Command::new(env!("CARGO_BIN_EXE_tifl"))
        .args(["run", "--spec", path.to_str().unwrap()])
        .output()
        .expect("tifl binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "tifl run --spec failed: {stdout}");
    assert!(
        stdout.contains("vanilla+i8: 5 rounds"),
        "unexpected summary: {stdout}"
    );
    assert!(stdout.contains("MB up"), "missing wire summary: {stdout}");

    // The CLI result matches running the same request in-process.
    let report = request.run();
    assert_eq!(report.policy, "vanilla+i8");
    assert_eq!(report.rounds.len(), 5);
    let _ = std::fs::remove_dir_all(&dir);
}

// -- property tests ----------------------------------------------------------

proptest! {
    /// Identity encodes losslessly, bit for bit, whatever the weights.
    #[test]
    fn prop_identity_round_trip_is_lossless(
        values in prop::collection::vec(-100.0f32..100.0, 1..200),
    ) {
        let p = ParamVec(values);
        let base = ParamVec::zeros(p.len());
        let enc = CodecSpec::Identity.encode(&p, &base);
        prop_assert_eq!(enc.decode(&base), p.clone());
        prop_assert_eq!(enc.wire_bytes(), 4 * p.len() as u64);
    }

    /// Int8 quantization errs by at most one quantization step per
    /// element, at a quarter of the dense wire size (+ header).
    #[test]
    fn prop_quantize_i8_error_within_one_step(
        values in prop::collection::vec(-50.0f32..50.0, 1..300),
    ) {
        let p = ParamVec(values);
        let base = ParamVec::zeros(p.len());
        let enc = CodecSpec::QuantizeI8.encode(&p, &base);
        let step = match &enc {
            EncodedUpdate::QuantI8 { scale, .. } => *scale,
            other => panic!("wrong payload {other:?}"),
        };
        let decoded = enc.decode(&base);
        for (x, y) in p.as_slice().iter().zip(decoded.as_slice()) {
            prop_assert!((x - y).abs() <= step,
                "error {} exceeds step {}", (x - y).abs(), step);
        }
        prop_assert_eq!(enc.wire_bytes(), p.len() as u64 + 8);
    }

    /// Top-k reconstructs the kept fraction exactly (same f32 bits) and
    /// leaves every other coordinate at the base value.
    #[test]
    fn prop_topk_preserves_top_fraction_exactly(
        values in prop::collection::vec(-10.0f32..10.0, 2..150),
        base_vals in prop::collection::vec(-10.0f32..10.0, 2..150),
        frac in 0.05f64..1.0,
    ) {
        let n = values.len().min(base_vals.len());
        let p = ParamVec(values[..n].to_vec());
        let base = ParamVec(base_vals[..n].to_vec());
        let spec = CodecSpec::TopK { frac };
        let enc = spec.encode(&p, &base);
        let k = CodecSpec::top_k_of(frac, n);
        prop_assert_eq!(enc.wire_bytes(), 8 * k as u64);

        let decoded = enc.decode(&base);
        // Rank coordinates by |delta| (ties toward the lower index) and
        // split into kept / dropped.
        let mut order: Vec<usize> = (0..n).collect();
        let delta: Vec<f32> = (0..n).map(|i| p.0[i] - base.0[i]).collect();
        order.sort_by(|&a, &b| {
            delta[b].abs().total_cmp(&delta[a].abs()).then(a.cmp(&b))
        });
        for (rank, &i) in order.iter().enumerate() {
            if rank < k {
                prop_assert_eq!(
                    decoded.0[i].to_bits(),
                    (base.0[i] + delta[i]).to_bits(),
                    "kept coordinate {} must reconstruct exactly", i
                );
            } else {
                prop_assert_eq!(
                    decoded.0[i].to_bits(), base.0[i].to_bits(),
                    "dropped coordinate {} must keep the base", i
                );
            }
        }
    }

    /// Wire sizes are data-independent: planned == actual for every
    /// codec and model size.
    #[test]
    fn prop_wire_bytes_match_plan(
        values in prop::collection::vec(-5.0f32..5.0, 1..100),
        codec_pick in 0u8..3,
        frac in 0.01f64..1.0,
    ) {
        let codec = match codec_pick {
            0 => CodecSpec::Identity,
            1 => CodecSpec::QuantizeI8,
            _ => CodecSpec::TopK { frac },
        };
        let p = ParamVec(values);
        let base = ParamVec::zeros(p.len());
        prop_assert_eq!(
            codec.encode(&p, &base).wire_bytes(),
            codec.encoded_bytes(p.len())
        );
    }
}
