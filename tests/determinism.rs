//! Whole-stack determinism: every experiment is a pure function of its
//! seed, regardless of rayon parallelism.

use tifl::core::scheduler::AdaptiveConfig;
use tifl::prelude::*;

#[test]
fn static_runs_identical_across_invocations() {
    let cfg = ExperimentConfig::tiny(11);
    let a = cfg.runner().policy(&Policy::uniform(5)).run();
    let b = cfg.runner().policy(&Policy::uniform(5)).run();
    assert_eq!(a, b);
}

#[test]
fn adaptive_runs_identical_across_invocations() {
    let cfg = ExperimentConfig::tiny(12);
    let acfg = AdaptiveConfig {
        interval: 3,
        credits_per_tier: 50,
        gamma: 2.0,
    };
    let a = cfg.runner().adaptive(Some(acfg)).run();
    let b = cfg.runner().adaptive(Some(acfg)).run();
    assert_eq!(a, b);
}

#[test]
fn different_seeds_give_different_runs() {
    let a = ExperimentConfig::tiny(13).runner().vanilla().run();
    let b = ExperimentConfig::tiny(14).runner().vanilla().run();
    assert_ne!(a, b);
}

#[test]
fn profiling_is_deterministic() {
    let cfg = ExperimentConfig::tiny(15);
    let (t1, p1) = cfg.profile_and_tier();
    let (t2, p2) = cfg.profile_and_tier();
    assert_eq!(t1, t2);
    assert_eq!(p1, p2);
}

#[test]
fn dataset_generation_is_deterministic() {
    let cfg = ExperimentConfig::tiny(16);
    let a = cfg.build_data();
    let b = cfg.build_data();
    assert_eq!(a.global_test, b.global_test);
    assert_eq!(a.clients[3].train, b.clients[3].train);
    assert_eq!(a.train_sizes(), b.train_sizes());
}

#[test]
fn leaf_runs_identical_across_invocations() {
    let exp = LeafExperiment::tiny(17);
    let a = exp.runner().policy(&Policy::uniform(5)).run();
    let b = exp.runner().policy(&Policy::uniform(5)).run();
    assert_eq!(a, b);
}

#[test]
fn cifar10_resource_het_smoke_is_deterministic() {
    // Smoke test at the paper's §5.1 topology (50 clients, CIFAR CPU
    // profile, 400 samples/client): two independent runs from the same
    // seed must agree exactly. The 500-round paper horizon is cut to 25
    // rounds to keep the suite fast; determinism over a prefix implies
    // determinism over the run (each round is a pure function of the
    // previous state and the seed).
    let mut cfg = ExperimentConfig::cifar10_resource_het(42);
    cfg.rounds = 25;
    let a = cfg.runner().policy(&Policy::uniform(5)).run();
    let b = cfg.runner().policy(&Policy::uniform(5)).run();
    assert_eq!(a.final_accuracy(), b.final_accuracy());
    assert_eq!(a, b);
}

#[test]
fn thread_pool_size_does_not_change_results() {
    // Run the same experiment under two differently sized rayon pools;
    // per-client seeding must make the outcome identical.
    let run_with_threads = |threads: usize| {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool");
        pool.install(|| {
            ExperimentConfig::tiny(18)
                .runner()
                .policy(&Policy::uniform(5))
                .run()
        })
    };
    assert_eq!(run_with_threads(1), run_with_threads(8));
}
