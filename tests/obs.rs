//! The observability contract:
//!
//! 1. the traced event stream and the metrics snapshot are **bit for
//!    bit** invariant across execution backends and thread counts —
//!    observability reads the same canonical round plans the engine
//!    executes, so `Lockstep` and `EventDriven{1,4,8}` must produce
//!    identical traces;
//! 2. observing a run never changes it: the report of
//!    `run_observed` equals the report of `run`;
//! 3. metrics snapshots are byte-deterministic (identical JSON) across
//!    repeated runs;
//! 4. pre-observability artifacts (no `metrics` field) still load and
//!    validate against the store's resume predicate;
//! 5. `RoundTimeline::from_plan` — the canonical-schedule derivation
//!    the live trace shares — reproduces the legacy event-queue
//!    builder on real session plans.

use proptest::prelude::*;
use tifl::prelude::*;

fn tiny(seed: u64) -> ExperimentConfig {
    ExperimentConfig::tiny(seed)
}

/// The pinned scenario matrix of `tests/runspec.rs`, reused here so
/// the trace invariance claim covers every selection × aggregation ×
/// local-objective × re-profiling shape the engine supports.
fn scenarios() -> Vec<(&'static str, ExperimentConfig, RunSpec)> {
    vec![
        (
            "uniform-policy",
            tiny(70),
            RunSpec {
                selection: SelectionStrategy::TierPolicy {
                    policy: Policy::uniform(5),
                },
                ..RunSpec::default()
            },
        ),
        (
            "vanilla",
            tiny(70),
            RunSpec {
                selection: SelectionStrategy::Vanilla,
                ..RunSpec::default()
            },
        ),
        (
            "adaptive",
            tiny(72),
            RunSpec {
                selection: SelectionStrategy::Adaptive { config: None },
                ..RunSpec::default()
            },
        ),
        (
            "overselect",
            tiny(74),
            RunSpec {
                aggregation: Some(AggregationMode::FirstK { factor: 1.5 }),
                ..RunSpec::default()
            },
        ),
        (
            "fedprox",
            tiny(75),
            RunSpec {
                local: LocalTraining::FedProx { mu: 0.25 },
                ..RunSpec::default()
            },
        ),
        (
            "uniform+reprofile",
            {
                let mut cfg = tiny(76);
                cfg.rounds = 16;
                cfg
            },
            RunSpec {
                selection: SelectionStrategy::TierPolicy {
                    policy: Policy::uniform(5),
                },
                reprofile_every: Some(4),
                ..RunSpec::default()
            },
        ),
    ]
}

/// Ring large enough that no tiny-scenario run ever wraps: record
/// equality below is over the *complete* stream.
const CAP: usize = 1 << 16;

// -- 1. backend & thread-count invariance ----------------------------------

#[test]
fn trace_and_metrics_are_backend_and_thread_invariant() {
    for (name, cfg, spec) in scenarios() {
        let lockstep = Runner::with_spec(&cfg, spec.clone()).run_observed(CAP);
        let lockstep_metrics = serde_json::to_string(&lockstep.metrics).expect("metrics serialize");
        assert!(
            !lockstep.records.is_empty(),
            "{name}: an observed run must produce a trace"
        );
        for threads in [1, 4, 8] {
            let event = Runner::with_spec(
                &cfg,
                RunSpec {
                    backend: ExecBackend::EventDriven { threads },
                    ..spec.clone()
                },
            )
            .run_observed(CAP);
            assert_eq!(
                lockstep.records, event.records,
                "{name}: EventDriven{{{threads}}} trace diverged from Lockstep"
            );
            assert_eq!(
                lockstep_metrics,
                serde_json::to_string(&event.metrics).expect("metrics serialize"),
                "{name}: EventDriven{{{threads}}} metrics diverged from Lockstep"
            );
            assert_eq!(
                lockstep.report, event.report,
                "{name}: observed reports diverged across backends"
            );
        }
    }
}

// -- 2. observation is free ------------------------------------------------

#[test]
fn observing_a_run_does_not_change_its_report() {
    for (name, cfg, spec) in scenarios() {
        let plain = Runner::with_spec(&cfg, spec.clone()).run();
        let observed = Runner::with_spec(&cfg, spec).run_observed(CAP);
        assert_eq!(
            plain, observed.report,
            "{name}: attaching an observer changed the training report"
        );
    }
}

// -- 3. byte-deterministic snapshots ---------------------------------------

#[test]
fn repeated_observed_runs_are_byte_identical() {
    let cfg = tiny(70);
    let spec = RunSpec {
        selection: SelectionStrategy::TierPolicy {
            policy: Policy::uniform(5),
        },
        ..RunSpec::default()
    };
    let a = Runner::with_spec(&cfg, spec.clone()).run_observed(CAP);
    let b = Runner::with_spec(&cfg, spec).run_observed(CAP);
    assert_eq!(a.records, b.records, "trace must be run-to-run identical");
    assert_eq!(
        serde_json::to_string(&a.metrics).expect("metrics serialize"),
        serde_json::to_string(&b.metrics).expect("metrics serialize"),
        "metrics snapshots must serialize to identical bytes"
    );
}

// -- structural sanity of the stream ---------------------------------------

#[test]
fn trace_structure_matches_the_run() {
    let cfg = tiny(70);
    let spec = RunSpec {
        selection: SelectionStrategy::TierPolicy {
            policy: Policy::uniform(5),
        },
        ..RunSpec::default()
    };
    let observed = Runner::with_spec(&cfg, spec).run_observed(CAP);
    let records = &observed.records;

    // Sequence numbers are the emission order and time never rewinds.
    for (i, r) in records.iter().enumerate() {
        assert_eq!(r.seq, i as u64, "complete stream in emission order");
    }
    for w in records.windows(2) {
        assert!(
            w[1].vt >= w[0].vt,
            "virtual time went backwards: {:?} -> {:?}",
            w[0],
            w[1]
        );
    }

    let count = |f: &dyn Fn(&TraceEvent) -> bool| records.iter().filter(|r| f(&r.event)).count();
    let rounds = cfg.rounds as usize;
    assert_eq!(
        count(&|e| matches!(e, TraceEvent::RoundStart { .. })),
        rounds
    );
    assert_eq!(count(&|e| matches!(e, TraceEvent::RoundEnd { .. })), rounds);

    // A tiered run profiles exactly once, before everything else.
    assert_eq!(count(&|e| matches!(e, TraceEvent::ProfilePass { .. })), 1);
    assert!(
        matches!(records[0].event, TraceEvent::ProfilePass { .. }),
        "the shared profiling pass opens the trace"
    );
    assert_eq!(records[0].vt, 0.0);

    // Evals fire on the session's eval cadence (plus the final round).
    let session = cfg.build_session(&SessionOverrides::default());
    let expected_evals = (0..cfg.rounds)
        .filter(|&r| session.is_eval_round(r))
        .count();
    assert_eq!(
        count(&|e| matches!(e, TraceEvent::Eval { .. })),
        expected_evals
    );

    // Every round's folds match its reported contributor count, and the
    // traced bytes reconcile with the report's communication totals.
    let folds = count(&|e| matches!(e, TraceEvent::Fold { .. }));
    let contributors: usize = observed
        .report
        .rounds
        .iter()
        .map(|r| r.aggregated.len())
        .sum();
    assert_eq!(folds, contributors);
    let traced_up: u64 = records
        .iter()
        .filter_map(|r| match r.event {
            TraceEvent::RoundEnd { bytes_up, .. } => Some(bytes_up),
            _ => None,
        })
        .sum();
    assert_eq!(traced_up, observed.report.total_bytes_up());

    // A vanilla run never profiles.
    let vanilla = Runner::with_spec(&tiny(70), RunSpec::default()).run_observed(CAP);
    assert_eq!(
        vanilla
            .records
            .iter()
            .filter(|r| matches!(r.event, TraceEvent::ProfilePass { .. }))
            .count(),
        0
    );
}

#[test]
fn reprofiling_runs_trace_one_pass_per_segment() {
    let mut cfg = tiny(76);
    cfg.rounds = 16;
    let spec = RunSpec {
        selection: SelectionStrategy::TierPolicy {
            policy: Policy::uniform(5),
        },
        reprofile_every: Some(4),
        ..RunSpec::default()
    };
    let observed = Runner::with_spec(&cfg, spec).run_observed(CAP);
    let passes: Vec<&TraceRecord> = observed
        .records
        .iter()
        .filter(|r| matches!(r.event, TraceEvent::ProfilePass { .. }))
        .collect();
    assert_eq!(passes.len(), 4, "16 rounds / reprofile_every(4) = 4 passes");
    assert_eq!(passes[0].vt, 0.0, "the first pass opens the run");
    for w in passes.windows(2) {
        assert!(w[1].vt > w[0].vt, "later passes happen mid-run");
    }
}

// -- async mode -------------------------------------------------------------

#[test]
fn async_trace_is_thread_invariant_and_reports_staleness() {
    let cfg = tiny(90);
    let run = |threads| {
        cfg.runner()
            .vanilla()
            .event_driven(threads)
            .async_aggregation(0)
            .run_observed(CAP)
    };
    let a = run(1);
    let b = run(4);
    assert_eq!(a.records, b.records, "async trace must be thread invariant");
    assert_eq!(a.report, b.report);
    let arrivals: Vec<(u64, bool)> = a
        .records
        .iter()
        .filter_map(|r| match r.event {
            TraceEvent::AsyncArrival {
                staleness, fresh, ..
            } => Some((staleness, fresh)),
            _ => None,
        })
        .collect();
    assert!(!arrivals.is_empty(), "async runs trace their arrivals");
    // max_staleness = 0 forces discards, and the trace shows them.
    assert!(
        arrivals.iter().any(|&(s, fresh)| s > 0 && !fresh),
        "a zero staleness bound must trace stale discards"
    );
    assert!(arrivals.iter().any(|&(_, fresh)| fresh));
}

// -- 4. artifact back-compat ------------------------------------------------

#[test]
fn artifacts_without_metrics_still_load_and_validate() {
    let request = RunRequest {
        experiment: tiny(91),
        rounds: Some(4),
        seed: None,
        clients_per_round: None,
        spec: RunSpec::default(),
    };
    let observed = request.run_observed(0);
    let key = RunKey::of(&request);
    let mut artifact = RunArtifact::new(key, request.clone(), observed.report);
    artifact.metrics = Some(observed.metrics);

    let dir = std::env::temp_dir().join(format!("tifl-obs-compat-{}", std::process::id()));
    let store = RunStore::open(&dir).expect("store opens");
    store.write(&artifact).expect("artifact writes");
    assert!(
        store
            .load(key)
            .expect("fresh artifact loads")
            .metrics
            .is_some(),
        "a freshly written artifact carries its metrics"
    );

    // Rewrite the file as a pre-observability artifact: no `metrics`
    // member at all, exactly what an old store contains.
    let text = std::fs::read_to_string(store.path_of(key)).expect("artifact readable");
    let mut value: serde::Value = serde_json::from_str(&text).expect("artifact parses");
    let serde::Value::Object(pairs) = &mut value else {
        panic!("artifact is a JSON object");
    };
    let before = pairs.len();
    pairs.retain(|(k, _)| k != "metrics");
    assert_eq!(pairs.len(), before - 1, "the metrics member was present");
    std::fs::write(
        store.path_of(key),
        serde_json::to_string_pretty(&value).expect("stripped artifact serializes"),
    )
    .expect("stripped artifact writes");

    let loaded = store
        .load_valid(key, &request)
        .expect("a metrics-less artifact must still validate for resume");
    assert!(loaded.metrics.is_none());
    assert!(store.validates(key, &request));
    let _ = std::fs::remove_dir_all(&dir);
}

// -- 5. timeline equivalence ------------------------------------------------

#[test]
fn from_plan_matches_the_event_queue_builder_on_live_session_plans() {
    // `RoundTimeline::build` is the legacy what-if replay: it knows
    // nothing of over-selection, so the equivalence claim is scoped to
    // `WaitAll` — exactly the regime where both derivations must agree
    // on every real plan a session produces.
    for seed in [70, 74, 82] {
        let cfg = tiny(seed);
        let mut session = cfg.build_session(&SessionOverrides::default());
        let mut selector = RandomSelector::new(cfg.num_clients, seed);
        let tmax = session.config().tmax_sec;
        for _ in 0..cfg.rounds {
            let plan = session.plan_round(&mut selector);
            let derived = RoundTimeline::from_plan(&plan, false, tmax);
            let replayed = RoundTimeline::build(&plan.responses, tmax, None);
            assert_eq!(
                derived, replayed,
                "seed {seed} round {}: canonical schedule diverged from the \
                 event-queue replay",
                plan.round
            );
            let _ = session.finish_round(plan, None, &mut selector, false);
        }
    }
}

// -- host-time phase profiling ---------------------------------------------

/// The (phase, round) shape of a host-span stream, split into the
/// deterministic part and the eval part. Backends emit Plan, Train and
/// Fold in the same per-round order, but Eval spans close wherever
/// eval results land on the coordinator (inline in lockstep, at
/// deferred patch application in the event engine) — so structure
/// comparison is: non-eval sequence exact, eval multiset equal.
type SpanShape = Vec<(Phase, u64)>;

fn span_shape(spans: &[HostSpan]) -> (SpanShape, SpanShape) {
    let (mut evals, non_evals): (Vec<_>, Vec<_>) = spans
        .iter()
        .map(|s| (s.phase, s.round))
        .partition(|(p, _)| *p == Phase::Eval);
    evals.sort_unstable_by_key(|&(_, r)| r);
    (non_evals, evals)
}

#[test]
fn host_span_structure_is_pinned_across_backends() {
    let cfg = tiny(70);
    let spec = RunSpec {
        selection: SelectionStrategy::TierPolicy {
            policy: Policy::uniform(5),
        },
        ..RunSpec::default()
    };
    let request = RunRequest {
        experiment: cfg.clone(),
        rounds: None,
        seed: None,
        clients_per_round: None,
        spec: spec.clone(),
    };
    let lockstep = request.run_observed_with_clock(CAP, FrozenClock::shared());
    let (base_seq, base_evals) = span_shape(&lockstep.host_spans);

    // The deterministic shape: one Profile pass, then Plan, Train,
    // Fold for every round, with evals on the session cadence.
    assert_eq!(base_seq[0], (Phase::Profile, 0));
    let rounds = cfg.rounds;
    for r in 0..rounds {
        let at = 1 + 3 * r as usize;
        assert_eq!(
            &base_seq[at..at + 3],
            &[(Phase::Plan, r), (Phase::Train, r), (Phase::Fold, r)],
            "round {r}: host spans must cover plan, train, fold in order"
        );
    }
    assert_eq!(base_seq.len(), 1 + 3 * rounds as usize);
    let session = cfg.build_session(&SessionOverrides::default());
    let expected_evals: Vec<(Phase, u64)> = (0..rounds)
        .filter(|&r| session.is_eval_round(r))
        .map(|r| (Phase::Eval, r))
        .collect();
    assert_eq!(base_evals, expected_evals);

    for threads in [1, 4] {
        let event_request = RunRequest {
            spec: RunSpec {
                backend: ExecBackend::EventDriven { threads },
                ..spec.clone()
            },
            ..request.clone()
        };
        let event = event_request.run_observed_with_clock(CAP, FrozenClock::shared());
        let (seq, evals) = span_shape(&event.host_spans);
        assert_eq!(
            seq, base_seq,
            "EventDriven{{{threads}}}: non-eval host-span sequence diverged"
        );
        assert_eq!(
            evals, base_evals,
            "EventDriven{{{threads}}}: eval host-span multiset diverged"
        );
        // Per-backend invariants: spans close in monotone order on the
        // frozen clock and every span is well-formed.
        for w in event.host_spans.windows(2) {
            assert!(w[1].end >= w[0].end, "spans must close in clock order");
        }
        for s in &event.host_spans {
            assert!(s.end > s.start, "frozen clock ticks inside every span");
        }
    }
}

#[test]
fn profiling_never_touches_the_deterministic_surface() {
    let cfg = tiny(70);
    let spec = RunSpec {
        selection: SelectionStrategy::TierPolicy {
            policy: Policy::uniform(5),
        },
        ..RunSpec::default()
    };
    let request = RunRequest {
        experiment: cfg,
        rounds: None,
        seed: None,
        clients_per_round: None,
        spec,
    };
    // Swapping the host clock can never change the report, the trace,
    // the metrics bytes, or the run's content key.
    let real = request.run_observed(CAP);
    let frozen = request.run_observed_with_clock(CAP, FrozenClock::shared());
    assert_eq!(real.report, frozen.report);
    assert_eq!(real.records, frozen.records);
    assert_eq!(
        serde_json::to_string(&real.metrics).expect("metrics serialize"),
        serde_json::to_string(&frozen.metrics).expect("metrics serialize"),
    );
    assert_eq!(RunKey::of(&request), RunKey::of(&request.clone()));

    // Host measurements stay out of the artifact bytes entirely.
    let key = RunKey::of(&request);
    let mut artifact = RunArtifact::new(key, request, real.report);
    artifact.metrics = Some(real.metrics);
    let json = serde_json::to_string_pretty(&artifact).expect("artifact serializes");
    assert!(
        !json.contains("host_phases") && !json.contains("host_spans"),
        "host-time measurements must never reach deterministic artifact bytes"
    );
}

#[test]
fn host_chrome_export_adds_a_second_process_lane() {
    let cfg = tiny(70);
    let spec = RunSpec {
        selection: SelectionStrategy::TierPolicy {
            policy: Policy::uniform(5),
        },
        ..RunSpec::default()
    };
    let observed = Runner::with_spec(&cfg, spec).run_observed(CAP);
    let mut events = chrome_trace(&observed.records);
    let virtual_count = events.len();
    events.extend(host_chrome_trace(&observed.host_spans));
    assert!(virtual_count > 0 && events.len() > virtual_count);

    // The merged file is valid JSON with exactly two distinct pids.
    let json = serde_json::to_string(&events).expect("events serialize");
    let value: serde::Value = serde_json::from_str(&json).expect("merged trace is valid JSON");
    let serde::Value::Array(items) = &value else {
        panic!("a Chrome trace is a JSON array");
    };
    assert_eq!(items.len(), events.len());
    let mut pids: Vec<u64> = events.iter().map(|e| e.pid).collect();
    pids.sort_unstable();
    pids.dedup();
    assert_eq!(pids, vec![1, 2], "virtual lane is pid 1, host lane pid 2");
}

// -- randomised invariance --------------------------------------------------

/// A shrunken resource-heterogeneity config for proptest speed (the
/// same shape `tests/exec_backend.rs` draws from).
fn small_resource_het(seed: u64, rounds: u64) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::cifar10_resource_het(seed);
    cfg.num_clients = 10;
    cfg.clients_per_round = 2;
    cfg.rounds = rounds;
    cfg.data = DataScenario::Iid { per_client: 30 };
    cfg.model = ModelSpec::Mlp {
        input: 64,
        hidden: 16,
        classes: 10,
    };
    cfg.eval_every = 2;
    cfg.profiler = ProfilerConfig {
        sync_rounds: 2,
        tmax_sec: 1e6,
    };
    cfg
}

fn spec_for(scenario: u8) -> RunSpec {
    match scenario % 4 {
        0 => RunSpec::default(),
        1 => RunSpec {
            selection: SelectionStrategy::TierPolicy {
                policy: Policy::uniform(5),
            },
            ..RunSpec::default()
        },
        2 => RunSpec {
            aggregation: Some(AggregationMode::FirstK { factor: 1.6 }),
            ..RunSpec::default()
        },
        _ => RunSpec {
            selection: SelectionStrategy::Adaptive { config: None },
            local: LocalTraining::FedProx { mu: 0.05 },
            ..RunSpec::default()
        },
    }
}

proptest! {
    /// On randomly drawn configurations, the virtual-time event
    /// sequence and the serialized metrics snapshot are identical
    /// across `Lockstep` and any `EventDriven` thread count, and
    /// across repeated runs.
    #[test]
    fn observed_stream_is_invariant_on_random_configs(
        seed in 0u64..1_000,
        rounds in 2u64..5,
        scenario in 0u8..4,
        threads in 1usize..8,
    ) {
        let cfg = small_resource_het(seed, rounds);
        let spec = spec_for(scenario);

        let lockstep = Runner::with_spec(&cfg, spec.clone()).run_observed(CAP);
        let event = Runner::with_spec(
            &cfg,
            RunSpec {
                backend: ExecBackend::EventDriven { threads },
                ..spec.clone()
            },
        )
        .run_observed(CAP);
        prop_assert_eq!(
            &lockstep.records, &event.records,
            "trace diverged: scenario {} seed {} threads {}",
            scenario, seed, threads
        );
        let lockstep_metrics =
            serde_json::to_string(&lockstep.metrics).expect("metrics serialize");
        prop_assert_eq!(
            &lockstep_metrics,
            &serde_json::to_string(&event.metrics).expect("metrics serialize"),
            "metrics diverged: scenario {} seed {} threads {}",
            scenario, seed, threads
        );

        // Run-to-run: the repeat is byte-identical, not merely equal.
        let again = Runner::with_spec(&cfg, spec).run_observed(CAP);
        prop_assert_eq!(&lockstep.records, &again.records);
        prop_assert_eq!(
            &lockstep_metrics,
            &serde_json::to_string(&again.metrics).expect("metrics serialize")
        );
    }
}
