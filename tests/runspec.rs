//! The `RunSpec`/`Runner` API contract:
//!
//! 1. every legacy `run_*` method is pinned to its `RunSpec`
//!    counterpart with an *identical* `TrainingReport` (same RNG
//!    streams, same labels, bit for bit);
//! 2. newly composable cells of the §5 evaluation matrix (FedProx ×
//!    adaptive tiering, over-selection × static tier policy, FedCS ×
//!    re-profiling) run and stay deterministic;
//! 3. a `Runner` profiles at most once per configuration no matter how
//!    many curves it serves;
//! 4. specs round-trip through JSON and drive full runs, including
//!    through the `tifl run --spec` CLI.

use tifl::prelude::*;

fn tiny(seed: u64) -> ExperimentConfig {
    ExperimentConfig::tiny(seed)
}

/// `tiny` with 4 clients per tier instead of 2, so tier-wise
/// over-selection (ask `ceil(|C|·factor)` *within one tier*) has a
/// large enough pool.
fn wide(seed: u64) -> ExperimentConfig {
    let mut cfg = tiny(seed);
    cfg.num_clients = 20;
    cfg
}

// -- 1. legacy equivalence -------------------------------------------------
//
// The only module in the workspace allowed to call the deprecated
// `run_*` wrappers: it exists to pin them against their `RunSpec`
// counterparts, so the allow is scoped here and nowhere else.
mod legacy_equivalence {
    #![allow(deprecated)]

    use super::*;

    #[test]
    fn run_policy_matches_spec_for_every_policy() {
        let cfg = tiny(70);
        for policy in Policy::cifar_set(5) {
            let legacy = cfg.run_policy(&policy);
            let spec = cfg.runner().policy(&policy).run();
            assert_eq!(legacy, spec, "policy {}", policy.name);
        }
    }

    #[test]
    fn run_policy_session_matches_spec() {
        let cfg = tiny(71);
        let (legacy, legacy_session) = cfg.run_policy_session(&Policy::uniform(5));
        let (spec, spec_session) = cfg.runner().policy(&Policy::uniform(5)).run_with_session();
        assert_eq!(legacy, spec);
        assert_eq!(legacy_session.global_params(), spec_session.global_params());
    }

    #[test]
    fn run_adaptive_matches_spec_with_and_without_config() {
        let cfg = tiny(72);
        assert_eq!(cfg.run_adaptive(None), cfg.runner().adaptive(None).run());
        let acfg = AdaptiveConfig {
            interval: 3,
            credits_per_tier: 40,
            gamma: 1.5,
        };
        assert_eq!(
            cfg.run_adaptive(Some(acfg)),
            cfg.runner().adaptive(Some(acfg)).run()
        );
    }

    #[test]
    fn run_fedcs_matches_spec() {
        let mut cfg = tiny(73);
        cfg.cpu_profile = tifl::sim::resource::profiles::CIFAR.to_vec();
        let deadline = {
            let mut runner = cfg.runner();
            let lats = runner.tiers().tier_latencies();
            (lats[2] + lats[3]) / 2.0
        };
        let legacy = cfg.run_fedcs(deadline);
        let spec = cfg.runner().deadline(deadline).run();
        assert_eq!(legacy, spec);
        assert_eq!(spec.policy, "fedcs");
    }

    #[test]
    fn run_overselection_matches_spec() {
        let cfg = tiny(74);
        let legacy = cfg.run_overselection(1.5);
        let spec = cfg.runner().vanilla().overselect(1.5).run();
        assert_eq!(legacy, spec);
        assert_eq!(spec.policy, "overselect(1.5)");
    }

    #[test]
    fn run_fedprox_matches_spec() {
        let cfg = tiny(75);
        let legacy = cfg.run_fedprox(0.25);
        let spec = cfg.runner().vanilla().fedprox(0.25).run();
        assert_eq!(legacy, spec);
        assert_eq!(spec.policy, "fedprox(0.25)");
    }

    #[test]
    fn run_policy_with_reprofiling_matches_spec() {
        let mut cfg = tiny(76);
        cfg.rounds = 16;
        let legacy = cfg.run_policy_with_reprofiling(&Policy::uniform(5), 4);
        let spec = cfg
            .runner()
            .policy(&Policy::uniform(5))
            .reprofile_every(4)
            .run();
        assert_eq!(legacy, spec);
        assert_eq!(spec.policy, "uniform+reprofile");
    }

    #[test]
    fn leaf_run_methods_match_specs() {
        let exp = LeafExperiment::tiny(77);
        assert_eq!(
            exp.run_policy(&Policy::vanilla()),
            exp.runner().vanilla().run()
        );
        assert_eq!(
            exp.run_policy(&Policy::uniform(5)),
            exp.runner().policy(&Policy::uniform(5)).run()
        );
        assert_eq!(exp.run_adaptive(None), exp.runner().adaptive(None).run());
    }
}

// -- 1b. execution-backend equivalence --------------------------------------
//
// The `ExecBackend` knob must never change results: every pinned
// scenario above re-runs on the event-driven engine and must produce
// the identical `TrainingReport`, bit for bit.

#[test]
fn event_driven_matches_lockstep_on_every_pinned_scenario() {
    let specs: Vec<(&str, ExperimentConfig, RunSpec)> = vec![
        (
            "uniform-policy",
            tiny(70),
            RunSpec {
                selection: SelectionStrategy::TierPolicy {
                    policy: Policy::uniform(5),
                },
                ..RunSpec::default()
            },
        ),
        (
            "vanilla",
            tiny(70),
            RunSpec {
                selection: SelectionStrategy::Vanilla,
                ..RunSpec::default()
            },
        ),
        (
            "adaptive",
            tiny(72),
            RunSpec {
                selection: SelectionStrategy::Adaptive { config: None },
                ..RunSpec::default()
            },
        ),
        (
            "overselect",
            tiny(74),
            RunSpec {
                aggregation: Some(AggregationMode::FirstK { factor: 1.5 }),
                ..RunSpec::default()
            },
        ),
        (
            "fedprox",
            tiny(75),
            RunSpec {
                local: LocalTraining::FedProx { mu: 0.25 },
                ..RunSpec::default()
            },
        ),
        (
            "uniform+reprofile",
            {
                let mut cfg = tiny(76);
                cfg.rounds = 16;
                cfg
            },
            RunSpec {
                selection: SelectionStrategy::TierPolicy {
                    policy: Policy::uniform(5),
                },
                reprofile_every: Some(4),
                ..RunSpec::default()
            },
        ),
    ];
    for (name, cfg, spec) in specs {
        let lockstep = Runner::with_spec(&cfg, spec.clone()).run();
        for threads in [1, 4] {
            let event = Runner::with_spec(
                &cfg,
                RunSpec {
                    backend: ExecBackend::EventDriven { threads },
                    ..spec.clone()
                },
            )
            .run();
            assert_eq!(
                lockstep, event,
                "{name}: EventDriven{{{threads}}} diverged from Lockstep"
            );
        }
    }
}

#[test]
fn async_aggregation_runs_only_on_the_engine() {
    // The genuinely new scenario the engine opens: staleness-aware
    // asynchronous aggregation. Deterministic for any thread count, and
    // stale updates really are discarded under a tight bound.
    let cfg = tiny(90);
    let run = |threads| {
        cfg.runner()
            .vanilla()
            .event_driven(threads)
            .async_aggregation(0)
            .run()
    };
    let a = run(1);
    let b = run(4);
    assert_eq!(a, b, "async must be thread-count invariant");
    assert_eq!(a.rounds.len() as u64, cfg.rounds);
    assert_eq!(a.policy, "async(0)");
    // max_staleness = 0: of the |C| initial in-flight updates only the
    // first is fresh; later arrivals trained on version 0 are stale.
    assert!(
        a.discarded_work_fraction() > 0.0,
        "a zero staleness bound must discard something"
    );
    let mut long = tiny(90);
    long.rounds = 60;
    let relaxed = long
        .runner()
        .vanilla()
        .event_driven(2)
        .async_aggregation(1_000)
        .run();
    assert_eq!(
        relaxed.discarded_work_fraction(),
        0.0,
        "an unreachable staleness bound discards nothing"
    );
    // Asynchronous aggregation still learns (60 single-update steps
    // take this tiny model from ~0.15 to ~0.35).
    assert!(relaxed.final_accuracy() > 0.3, "async training must learn");
}

// -- 2. newly composable scenarios ----------------------------------------

#[test]
fn fedprox_composes_with_adaptive_tiering() {
    let cfg = tiny(78);
    let run = || cfg.runner().adaptive(None).fedprox(0.1).run();
    let a = run();
    assert_eq!(a.rounds.len() as u64, cfg.rounds);
    assert_eq!(a.policy, "adaptive+fedprox(0.1)");
    assert!(a.final_accuracy() > 0.0);
    assert_eq!(a, run(), "composed run must stay deterministic");
    // The proximal term actually changes training.
    let plain = cfg.runner().adaptive(None).run();
    assert_ne!(a.rounds, plain.rounds, "mu = 0.1 must alter the updates");
}

#[test]
fn overselection_composes_with_static_tier_policy() {
    let mut cfg = wide(79);
    cfg.cpu_profile = tifl::sim::resource::profiles::CIFAR.to_vec();
    let run = || {
        cfg.runner()
            .policy(&Policy::uniform(5))
            .overselect(2.0)
            .run()
    };
    let report = run();
    assert_eq!(report.rounds.len() as u64, cfg.rounds);
    // Over-selection really over-selects within the drawn tier …
    assert!(report.rounds.iter().all(|r| r.selected.len() == 4));
    assert!(report.rounds.iter().all(|r| r.aggregated.len() == 2));
    assert!(report.discarded_work_fraction() > 0.4);
    // … and stays deterministic.
    assert_eq!(report, run());
}

#[test]
fn fedcs_composes_with_reprofiling_across_a_regime_switch() {
    // The composition the motivation calls out as previously
    // inexpressible: a deadline selector whose profile refreshes after
    // the fast devices slow down.
    let mut cfg = tiny(80);
    cfg.cpu_profile = tifl::sim::resource::profiles::CIFAR.to_vec();
    cfg.latency.base_overhead_sec = 0.0;
    cfg.rounds = 20;
    let mut factors = vec![1.0; 10];
    factors[0] = 0.01;
    factors[1] = 0.01;
    cfg.drift = DriftModel::RegimeSwitch {
        at_round: 10,
        factors,
    };
    let deadline = {
        let mut runner = cfg.runner();
        let lats = runner.tiers().tier_latencies();
        (lats[0] + lats[1]) / 2.0
    };
    let report = cfg.runner().deadline(deadline).reprofile_every(10).run();
    assert_eq!(report.policy, "fedcs+reprofile");
    // Before the switch only the fast devices (0, 1) meet the deadline;
    // after re-profiling they are over it and must vanish.
    let first = &report.rounds[..10];
    let second = &report.rounds[10..];
    assert!(first.iter().all(|r| r.selected.iter().all(|&c| c < 2)));
    assert!(second
        .iter()
        .all(|r| !r.selected.contains(&0) && !r.selected.contains(&1)));
}

// -- 3. profiling happens once per config ----------------------------------

#[test]
fn multi_curve_runner_profiles_once() {
    // The fig3-style loop: one config, many policy curves. The legacy
    // methods re-profiled per curve; the shared runner must not.
    let cfg = tiny(81);
    let mut runner = cfg.runner();
    for policy in Policy::cifar_set(5) {
        let _ = runner.policy(&policy).run();
    }
    let _ = runner.adaptive(None).run();
    let _ = runner.estimate(&Policy::uniform(5));
    assert_eq!(
        runner.profile_count(),
        1,
        "one config, one profiling pass, regardless of curve count"
    );
}

#[test]
fn shared_profile_does_not_change_results() {
    // Re-using the cached profile must give the same reports as fresh
    // runners that each profile on their own.
    let cfg = tiny(82);
    let mut shared = cfg.runner();
    let a_shared = shared.policy(&Policy::uniform(5)).run();
    let b_shared = shared.policy(&Policy::fast(5)).run();
    assert_eq!(a_shared, cfg.runner().policy(&Policy::uniform(5)).run());
    assert_eq!(b_shared, cfg.runner().policy(&Policy::fast(5)).run());
}

// -- 4. serialization drives runs ------------------------------------------

#[test]
fn json_spec_round_trips_and_drives_a_run() {
    let spec = RunSpec {
        selection: SelectionStrategy::TierPolicy {
            policy: Policy::uniform(5),
        },
        aggregation: Some(AggregationMode::FirstK { factor: 1.3 }),
        local: LocalTraining::FedProx { mu: 0.01 },
        reprofile_every: None,
        label: None,
        backend: ExecBackend::default(),
        comm: None,
    };
    let json = serde_json::to_string_pretty(&spec).expect("spec serialises");
    let back: RunSpec = serde_json::from_str(&json).expect("spec parses");
    assert_eq!(back, spec);

    let cfg = wide(83);
    let report = Runner::with_spec(&cfg, back).run();
    assert_eq!(report.rounds.len() as u64, cfg.rounds);
    assert_eq!(report.policy, "uniform+fedprox(0.01)+overselect(1.3)");
    // The deserialized spec reproduces the fluent-builder run exactly.
    let fluent = cfg
        .runner()
        .policy(&Policy::uniform(5))
        .overselect(1.3)
        .fedprox(0.01)
        .run();
    assert_eq!(report, fluent);
}

#[test]
fn spec_cli_runs_a_json_run_request() {
    // End-to-end through the binary: write a RunRequest, invoke
    // `tifl run --spec`, check the report summary it prints.
    let request = RunRequest {
        experiment: tiny(84),
        rounds: Some(6),
        seed: None,
        clients_per_round: None,
        spec: RunSpec {
            selection: SelectionStrategy::Adaptive { config: None },
            local: LocalTraining::FedProx { mu: 0.05 },
            ..RunSpec::default()
        },
    };
    let dir = std::env::temp_dir().join(format!("tifl-spec-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("run.json");
    std::fs::write(&path, serde_json::to_string_pretty(&request).unwrap()).expect("write spec");

    let out = std::process::Command::new(env!("CARGO_BIN_EXE_tifl"))
        .args(["run", "--spec", path.to_str().unwrap()])
        .output()
        .expect("tifl binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "tifl run --spec failed: {stdout}");
    assert!(
        stdout.contains("adaptive+fedprox(0.05): 6 rounds"),
        "unexpected summary: {stdout}"
    );

    // The CLI result matches running the same request in-process.
    let report = request.run();
    assert_eq!(report.rounds.len(), 6);
    assert_eq!(report.policy, "adaptive+fedprox(0.05)");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn spec_cli_threads_override_is_result_invariant() {
    // `tifl run --spec run.json --threads 2` forces the worker count;
    // being an execution knob, it must not change the printed report.
    let request = RunRequest {
        experiment: tiny(85),
        rounds: Some(5),
        seed: None,
        clients_per_round: None,
        spec: RunSpec {
            backend: ExecBackend::EventDriven { threads: 1 },
            ..RunSpec::default()
        },
    };
    let dir = std::env::temp_dir().join(format!("tifl-threads-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("run.json");
    std::fs::write(&path, serde_json::to_string_pretty(&request).unwrap()).expect("write spec");

    let run_cli = |extra: &[&str]| {
        let mut args = vec!["run", "--spec", path.to_str().unwrap()];
        args.extend_from_slice(extra);
        let out = std::process::Command::new(env!("CARGO_BIN_EXE_tifl"))
            .args(&args)
            .output()
            .expect("tifl binary runs");
        assert!(
            out.status.success(),
            "tifl {args:?} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let plain = run_cli(&[]);
    let threaded = run_cli(&["--threads", "2"]);
    assert_eq!(plain, threaded, "thread override changed the results");
    assert!(plain.contains("vanilla: 5 rounds"), "summary: {plain}");
    let _ = std::fs::remove_dir_all(&dir);
}
