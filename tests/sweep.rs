//! Integration tests for `tifl_sweep`, pinning the subsystem's three
//! contracts:
//!
//! 1. **Determinism** — a sweep executed with 1 or 4 workers is
//!    bit-for-bit identical to the same `RunRequest`s executed
//!    serially, on both execution backends (the worker pool is an
//!    execution knob, never a result knob);
//! 2. **Resume** — a sweep interrupted after k of n runs resumes,
//!    skips the completed run keys without touching their artifacts
//!    (mtime-checked), re-profiles only what the remaining runs need,
//!    and ends with artifacts byte-identical to an uninterrupted
//!    sweep's;
//! 3. **Expansion stability** — manifest expansion is a pure function
//!    of the manifest (order-stable) and `RunKey`s never collide
//!    across distinct cells (proptested over the axes).

use proptest::prelude::*;
use tifl::prelude::*;

/// A shrunken §5.1 resource-heterogeneity config (the
/// `tests/exec_backend.rs` scaling): real 5-group CPU profile, small
/// data/model so a run is milliseconds.
fn small_resource_het(seed: u64, rounds: u64) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::cifar10_resource_het(seed);
    cfg.num_clients = 10;
    cfg.clients_per_round = 2;
    cfg.rounds = rounds;
    cfg.data = DataScenario::Iid { per_client: 30 };
    cfg.model = ModelSpec::Mlp {
        input: 64,
        hidden: 16,
        classes: 10,
    };
    cfg.eval_every = 2;
    cfg.profiler = ProfilerConfig {
        sync_rounds: 2,
        tmax_sec: 1e6,
    };
    cfg
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tifl-sweep-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The ISSUE's pinned matrix: selection × both backends on a small
/// `cifar10_resource_het`.
fn backend_matrix() -> SweepManifest {
    let mut manifest = SweepManifest::new(small_resource_het(42, 4));
    manifest.axes.selection = vec![
        SelectionStrategy::Vanilla,
        SelectionStrategy::TierPolicy {
            policy: Policy::uniform(5),
        },
        SelectionStrategy::Adaptive { config: None },
    ];
    manifest.axes.backend = vec![
        ExecBackend::Lockstep,
        ExecBackend::EventDriven { threads: 2 },
    ];
    manifest
}

#[test]
fn sweep_equals_serial_request_loop_bit_for_bit() {
    let manifest = backend_matrix();
    let runs = manifest.expand();
    assert_eq!(runs.len(), 6);

    // The reference: each expanded request executed serially through
    // the plain (unshared, uncached) `RunRequest::run` path.
    let serial: Vec<TrainingReport> = runs.iter().map(|r| r.request.run()).collect();

    for workers in [1, 4] {
        let sweep = SweepScheduler::new(workers).run(&manifest, None, false);
        assert_eq!(sweep.failed(), 0, "workers={workers}");
        let reports = sweep.into_reports();
        assert_eq!(
            reports, serial,
            "sweep(workers={workers}) diverged from the serial loop"
        );
    }
}

#[test]
fn sweep_shares_one_profile_per_topology() {
    let manifest = backend_matrix();
    let sweep = SweepScheduler::new(4).run(&manifest, None, false);
    // One experiment, one comm axis: the four tiered/adaptive cells
    // (2 selections × 2 backends) share a single profiling pass.
    assert_eq!(sweep.profiles_computed, 1);
}

#[test]
fn interrupted_sweep_resumes_to_byte_identical_artifacts() {
    let mut full = SweepManifest::new(small_resource_het(7, 3));
    full.axes.seeds = vec![7, 8];
    full.axes.selection = vec![
        SelectionStrategy::Vanilla,
        SelectionStrategy::TierPolicy {
            policy: Policy::uniform(5),
        },
        SelectionStrategy::TierPolicy {
            policy: Policy::fast(5),
        },
    ];
    let runs = full.expand();
    assert_eq!(runs.len(), 6);

    // Reference: the uninterrupted sweep.
    let clean_dir = tmp_dir("clean");
    let clean_store = RunStore::open(&clean_dir).expect("store opens");
    let clean = SweepScheduler::new(2).run(&full, Some(&clean_store), false);
    assert_eq!(clean.completed(), 6);
    assert_eq!(clean.profiles_computed, 2, "one profile per seed");

    // "Interrupted after k of n": only the first seed's 3 runs got to
    // execute before the kill.
    let mut prefix = full.clone();
    prefix.axes.seeds = vec![7];
    let resumed_dir = tmp_dir("resumed");
    let resumed_store = RunStore::open(&resumed_dir).expect("store opens");
    let partial = SweepScheduler::new(2).run(&prefix, Some(&resumed_store), false);
    assert_eq!(partial.completed(), 3);
    assert_eq!(partial.profiles_computed, 1);
    let pre_existing: Vec<(std::path::PathBuf, std::time::SystemTime)> = resumed_store
        .keys()
        .into_iter()
        .map(|k| {
            let path = resumed_store.path_of(k);
            let mtime = std::fs::metadata(&path).and_then(|m| m.modified()).unwrap();
            (path, mtime)
        })
        .collect();
    assert_eq!(pre_existing.len(), 3);

    // Resume the full manifest over the half-filled store.
    let resumed = SweepScheduler::new(2).run(&full, Some(&resumed_store), true);
    assert_eq!(resumed.skipped(), 3, "completed run keys must be skipped");
    assert_eq!(resumed.completed(), 3);
    assert_eq!(
        resumed.profiles_computed, 1,
        "resume must re-profile only the un-run seed's topology"
    );
    for (path, mtime) in &pre_existing {
        let now = std::fs::metadata(path).and_then(|m| m.modified()).unwrap();
        assert_eq!(
            now,
            *mtime,
            "resume rewrote a completed artifact: {}",
            path.display()
        );
    }

    // The resumed store is byte-identical to the uninterrupted one,
    // artifact for artifact.
    let keys = clean_store.keys();
    assert_eq!(keys.len(), 6);
    assert_eq!(keys, resumed_store.keys());
    for key in keys {
        let a = std::fs::read(clean_store.path_of(key)).expect("clean artifact");
        let b = std::fs::read(resumed_store.path_of(key)).expect("resumed artifact");
        assert_eq!(a, b, "artifact {key} diverged between clean and resumed");
    }

    // And the outcomes agree report-for-report with the clean sweep.
    assert_eq!(resumed.into_reports(), clean.into_reports());

    let _ = std::fs::remove_dir_all(&clean_dir);
    let _ = std::fs::remove_dir_all(&resumed_dir);
}

#[test]
fn resume_reruns_cells_whose_artifacts_do_not_validate() {
    let mut manifest = SweepManifest::new(small_resource_het(3, 3));
    manifest.axes.seeds = vec![1, 2];
    let dir = tmp_dir("invalid");
    let store = RunStore::open(&dir).expect("store opens");
    let first = SweepScheduler::new(1).run(&manifest, Some(&store), false);
    assert_eq!(first.completed(), 2);

    // Corrupt one artifact; a manifest edit changes the other cell's
    // key entirely (so its old artifact is simply unreferenced).
    let keys = store.keys();
    std::fs::write(store.path_of(keys[0]), "not json").expect("corrupt");
    let resumed = SweepScheduler::new(1).run(&manifest, Some(&store), true);
    assert_eq!(resumed.completed(), 1, "corrupt artifact must re-run");
    assert_eq!(resumed.skipped(), 1);
    for run in manifest.expand() {
        assert!(store.validates(run.key, &run.request));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn failed_runs_do_not_sink_the_sweep() {
    // vanilla selection + re-profiling is rejected by the runner with a
    // panic; schedule it between two good runs and make sure only that
    // cell fails — and that nothing was persisted for it.
    let good = SweepManifest::new(small_resource_het(5, 3));
    let mut runs = good.expand();
    let mut bad_request = runs[0].request.clone();
    bad_request.spec.reprofile_every = Some(1);
    bad_request.seed = Some(99);
    let bad = KeyedRun {
        index: 1,
        key: RunKey::of(&bad_request),
        request: bad_request,
    };
    let mut more = SweepManifest::new(small_resource_het(6, 3)).expand();
    runs.push(bad);
    runs.append(&mut more);
    for (i, run) in runs.iter_mut().enumerate() {
        run.index = i;
    }

    let dir = tmp_dir("panic");
    let store = RunStore::open(&dir).expect("store opens");
    let sweep = SweepScheduler::new(2).execute(&runs, Some(&store), false);
    assert_eq!(sweep.completed(), 2);
    assert_eq!(sweep.failed(), 1);
    assert!(sweep.outcomes[1].is_failed());
    assert!(sweep.failures()[0]
        .2
        .contains("re-profiling requires a tiered policy"));
    assert_eq!(store.keys().len(), 2, "failed runs leave no artifact");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sweep_builder_runs_comm_and_aggregation_axes() {
    // A cross of lossy codecs and aggregation modes — cells the legacy
    // figure loops never expressed — all through one builder chain.
    let mut builder = SweepBuilder::new(small_resource_het(9, 3));
    let sweep = builder
        .codecs([CodecSpec::Identity, CodecSpec::QuantizeI8])
        .aggregations([None, Some(AggregationMode::FirstK { factor: 1.5 })])
        .workers(2)
        .run();
    assert_eq!(sweep.failed(), 0);
    let reports = sweep.into_reports();
    assert_eq!(reports.len(), 4);
    let labels: Vec<&str> = reports.iter().map(|r| r.policy.as_str()).collect();
    assert_eq!(
        labels,
        vec![
            "vanilla",
            "vanilla+i8",
            "overselect(1.5)",
            "overselect(1.5)+i8"
        ]
    );
}

// -- CLI end-to-end ----------------------------------------------------------

#[test]
fn run_spec_cli_out_writes_the_full_report_json() {
    // `tifl run --spec run.json --out report.json` must write the full
    // TrainingReport through the sweep store's serializer, so the file
    // parses back into exactly the in-process report.
    let request = RunRequest {
        experiment: ExperimentConfig::tiny(91),
        rounds: Some(4),
        seed: None,
        clients_per_round: None,
        spec: RunSpec::default(),
    };
    let dir = tmp_dir("cli-out");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let spec_path = dir.join("run.json");
    let out_path = dir.join("report.json");
    std::fs::write(&spec_path, serde_json::to_string_pretty(&request).unwrap())
        .expect("write spec");

    let out = std::process::Command::new(env!("CARGO_BIN_EXE_tifl"))
        .args([
            "run",
            "--spec",
            spec_path.to_str().unwrap(),
            "--out",
            out_path.to_str().unwrap(),
        ])
        .output()
        .expect("tifl binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "tifl run --spec --out failed: {stdout}"
    );
    assert!(stdout.contains("wrote full report to"), "stdout: {stdout}");

    let text = std::fs::read_to_string(&out_path).expect("report written");
    let report: TrainingReport = serde_json::from_str(&text).expect("report parses");
    assert_eq!(report, request.run(), "file must round-trip the report");
    // Same serializer as the sweep store: pretty JSON + trailing
    // newline.
    assert!(text.ends_with('\n'));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sweep_cli_executes_and_resumes_a_manifest() {
    let mut manifest = SweepManifest::new(small_resource_het(33, 3));
    manifest.name = Some("cli-e2e".into());
    manifest.axes.selection = vec![
        SelectionStrategy::Vanilla,
        SelectionStrategy::TierPolicy {
            policy: Policy::uniform(5),
        },
    ];
    let dir = tmp_dir("cli-sweep");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let manifest_path = dir.join("sweep.json");
    let arts = dir.join("arts");
    std::fs::write(
        &manifest_path,
        serde_json::to_string_pretty(&manifest).unwrap(),
    )
    .expect("write manifest");

    let run_cli = |extra: &[&str]| {
        let mut args = vec![
            "sweep",
            manifest_path.to_str().unwrap(),
            "--workers",
            "2",
            "--out",
            arts.to_str().unwrap(),
        ];
        args.extend_from_slice(extra);
        let out = std::process::Command::new(env!("CARGO_BIN_EXE_tifl"))
            .args(&args)
            .output()
            .expect("tifl binary runs");
        assert!(
            out.status.success(),
            "tifl {args:?} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    };

    let first = run_cli(&[]);
    assert!(
        first.contains("2 completed, 0 skipped, 0 failed"),
        "first pass: {first}"
    );
    let store = RunStore::open(&arts).expect("store opens");
    assert_eq!(store.keys().len(), 2);
    for run in manifest.expand() {
        assert!(store.validates(run.key, &run.request));
    }
    assert!(store.summary_path().exists(), "summary sidecar written");

    let second = run_cli(&["--resume"]);
    assert!(
        second.contains("0 completed, 2 skipped, 0 failed"),
        "resume pass: {second}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// -- property tests ----------------------------------------------------------

/// Build a manifest from proptest-drawn axis subsets. Drawn indices
/// are deduplicated (first occurrence wins) before indexing the fixed
/// pools, so values within an axis are distinct and every expanded
/// cell is a genuinely different request.
fn manifest_from(
    seeds: Vec<u64>,
    selection_idx: Vec<usize>,
    aggregation_idx: Vec<usize>,
    local_idx: Vec<usize>,
    codec_idx: Vec<usize>,
    backend_idx: Vec<usize>,
) -> SweepManifest {
    let selections = [
        SelectionStrategy::Vanilla,
        SelectionStrategy::TierPolicy {
            policy: Policy::uniform(5),
        },
        SelectionStrategy::TierPolicy {
            policy: Policy::fast(5),
        },
        SelectionStrategy::Adaptive { config: None },
        SelectionStrategy::Deadline { deadline_sec: 9.0 },
    ];
    let aggregations = [
        None,
        Some(AggregationMode::WaitAll),
        Some(AggregationMode::FirstK { factor: 1.5 }),
    ];
    let locals = [
        LocalTraining::FedAvg,
        LocalTraining::FedProx { mu: 0.01 },
        LocalTraining::FedProx { mu: 0.1 },
    ];
    let codecs = [
        CodecSpec::Identity,
        CodecSpec::QuantizeI8,
        CodecSpec::TopK { frac: 0.25 },
    ];
    let backends = [
        ExecBackend::Lockstep,
        ExecBackend::EventDriven { threads: 2 },
        ExecBackend::EventDriven { threads: 4 },
    ];
    let mut seen_seeds = std::collections::BTreeSet::new();
    let mut manifest = SweepManifest::new(ExperimentConfig::tiny(1));
    manifest.axes.seeds = seeds
        .into_iter()
        .filter(|&s| seen_seeds.insert(s))
        .collect();
    manifest.axes.selection = distinct(&selection_idx)
        .map(|i| selections[i].clone())
        .collect();
    manifest.axes.aggregation = distinct(&aggregation_idx)
        .map(|i| aggregations[i])
        .collect();
    manifest.axes.local = distinct(&local_idx).map(|i| locals[i]).collect();
    manifest.axes.codec = distinct(&codec_idx).map(|i| codecs[i]).collect();
    manifest.axes.backend = distinct(&backend_idx).map(|i| backends[i]).collect();
    manifest
}

/// First occurrence of each index, in draw order.
fn distinct(indices: &[usize]) -> impl Iterator<Item = usize> + '_ {
    let mut seen = std::collections::BTreeSet::new();
    indices.iter().copied().filter(move |&i| seen.insert(i))
}

proptest! {
    /// Expansion is order-stable and `RunKey`s are collision-free
    /// across the axes: every distinct cell gets a distinct key, and
    /// re-expanding reproduces the exact same keyed list.
    #[test]
    fn prop_expansion_is_stable_and_keys_collision_free(
        seeds in prop::collection::vec(0u64..1000, 0..3),
        selection_idx in prop::collection::vec(0usize..5, 0..5),
        aggregation_idx in prop::collection::vec(0usize..3, 0..3),
        local_idx in prop::collection::vec(0usize..3, 0..3),
        codec_idx in prop::collection::vec(0usize..3, 0..3),
        backend_idx in prop::collection::vec(0usize..3, 0..3),
    ) {
        let manifest = manifest_from(
            seeds, selection_idx, aggregation_idx, local_idx, codec_idx, backend_idx,
        );
        let runs = manifest.expand();
        // Order-stable: a second expansion is identical, index for
        // index and key for key.
        prop_assert_eq!(&runs, &manifest.expand());
        for (i, run) in runs.iter().enumerate() {
            prop_assert_eq!(run.index, i);
        }
        // Collision-free: distinct resolved requests <-> distinct keys.
        let requests: std::collections::BTreeSet<String> = runs
            .iter()
            .map(|r| serde_json::to_string(&(r.request.experiment(), r.request.spec.clone())).unwrap())
            .collect();
        let keys: std::collections::BTreeSet<RunKey> =
            runs.iter().map(|r| r.key).collect();
        prop_assert_eq!(requests.len(), runs.len(), "expansion emitted duplicate cells");
        prop_assert_eq!(keys.len(), runs.len(), "run keys collided");
        // And keys really are content-stable: recomputing from the
        // request reproduces them.
        for run in &runs {
            prop_assert_eq!(run.key, RunKey::of(&run.request));
        }
    }
}
