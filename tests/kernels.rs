//! Bit-for-bit equivalence proptests for the blocked/unrolled hot-path
//! kernels against their scalar reference implementations, plus the
//! documented non-finite contract of the codec kernels.
//!
//! These run against whichever dispatch the build selected: the default
//! 4/8-wide unrolled loops, or (under `cargo test --features simd`) the
//! SSE2 kernels — so one suite pins both tiers to the scalar reference.
//! Equality is asserted on raw bit patterns, never on approximate
//! values: the aggregation pipeline's two execution backends are pinned
//! bit-for-bit equal, so any kernel that reassociates or fuses floats
//! is a correctness bug here, not a tolerance question.

use proptest::prelude::*;
use tifl::comm::{CodecSpec, EncodeScratch};
use tifl::tensor::{codec, ops, ParamVec};

fn bits(xs: &[f32]) -> Vec<u32> {
    xs.iter().map(|x| x.to_bits()).collect()
}

/// Overwrite a sprinkling of elements with NaN/±inf, driven by a
/// generated tag vector (most tags leave the element finite).
fn inject_specials(xs: &mut [f32], tags: &[u8]) {
    for (x, &t) in xs.iter_mut().zip(tags) {
        match t {
            0 => *x = f32::NAN,
            1 => *x = f32::INFINITY,
            2 => *x = f32::NEG_INFINITY,
            _ => {}
        }
    }
}

proptest! {
    /// `ops::axpy` (unrolled or SIMD) is bitwise `ops::axpy_scalar`,
    /// including NaN/±inf propagation.
    #[test]
    fn axpy_matches_scalar_reference_bitwise(
        alpha in -10.0f32..10.0,
        xs in prop::collection::vec(-100.0f32..100.0, 0..300),
        out in prop::collection::vec(-100.0f32..100.0, 0..300),
        tags in prop::collection::vec(0u8..40, 0..300),
    ) {
        let n = xs.len().min(out.len());
        let mut x = xs[..n].to_vec();
        inject_specials(&mut x, &tags);
        let mut fast = out[..n].to_vec();
        let mut slow = fast.clone();
        ops::axpy(alpha, &x, &mut fast);
        ops::axpy_scalar(alpha, &x, &mut slow);
        prop_assert_eq!(bits(&fast), bits(&slow));
    }

    /// `ops::scale` is bitwise `ops::scale_scalar`.
    #[test]
    fn scale_matches_scalar_reference_bitwise(
        alpha in -10.0f32..10.0,
        out in prop::collection::vec(-100.0f32..100.0, 0..300),
        tags in prop::collection::vec(0u8..40, 0..300),
    ) {
        let mut fast = out.clone();
        inject_specials(&mut fast, &tags);
        let mut slow = fast.clone();
        ops::scale(alpha, &mut fast);
        ops::scale_scalar(alpha, &mut slow);
        prop_assert_eq!(bits(&fast), bits(&slow));
    }

    /// The unrolled dequantize-and-accumulate kernel is bitwise its
    /// scalar reference for every code pattern and affine range.
    #[test]
    fn dequantize_i8_axpy_matches_scalar_reference_bitwise(
        alpha in -4.0f32..4.0,
        min in -50.0f32..50.0,
        scale in 0.0f32..2.0,
        codes in prop::collection::vec(-128i8..=127, 0..300),
        out in prop::collection::vec(-100.0f32..100.0, 0..300),
    ) {
        let n = codes.len().min(out.len());
        let mut fast = out[..n].to_vec();
        let mut slow = fast.clone();
        codec::dequantize_i8_axpy(alpha, min, scale, &codes[..n], &mut fast);
        codec::dequantize_i8_axpy_scalar(alpha, min, scale, &codes[..n], &mut slow);
        prop_assert_eq!(bits(&fast), bits(&slow));
    }

    /// The unrolled sparse scatter-accumulate is bitwise its scalar
    /// reference on arbitrary sorted index subsets.
    #[test]
    fn axpy_sparse_matches_scalar_reference_bitwise(
        alpha in -4.0f32..4.0,
        out in prop::collection::vec(-100.0f32..100.0, 1..300),
        mask in prop::collection::vec(0u8..3, 300),
        vals in prop::collection::vec(-50.0f32..50.0, 300),
    ) {
        let indices: Vec<u32> = (0..out.len() as u32)
            .filter(|&i| mask[i as usize] == 0)
            .collect();
        let idx_delta = codec::delta_encode_indices(&indices);
        let values = &vals[..indices.len()];
        let mut fast = out.clone();
        let mut slow = out.clone();
        codec::axpy_sparse(alpha, &idx_delta, values, &mut fast);
        codec::axpy_sparse_scalar(alpha, &idx_delta, values, &mut slow);
        prop_assert_eq!(bits(&fast), bits(&slow));
    }

    /// Non-finite contract of `quantize_i8`: the range covers finite
    /// elements only, NaN/−inf pin to code −128, +inf to 127, and every
    /// finite element round-trips within one quantization step.
    #[test]
    fn quantize_i8_honours_the_non_finite_contract(
        xs in prop::collection::vec(-100.0f32..100.0, 1..300),
        tags in prop::collection::vec(0u8..20, 1..300),
    ) {
        let mut xs = xs;
        inject_specials(&mut xs, &tags);
        let (min, scale, codes) = codec::quantize_i8(&xs);
        prop_assert_eq!(codes.len(), xs.len());
        prop_assert!(min.is_finite() && scale.is_finite());
        prop_assert!(scale >= 0.0);
        for (&x, &c) in xs.iter().zip(&codes) {
            if x.is_nan() || x == f32::NEG_INFINITY {
                prop_assert_eq!(c, -128, "non-finite low must decode to min");
            } else if x == f32::INFINITY && scale > 0.0 {
                prop_assert_eq!(c, 127, "+inf must saturate to the top code");
            } else if x.is_finite() {
                let decoded = min + scale * (f32::from(c) + 128.0);
                prop_assert!(
                    (decoded - x).abs() <= scale.max(1e-4),
                    "finite {x} decoded to {decoded} (step {scale})"
                );
            }
        }
    }

    /// NaN magnitudes genuinely lose top-k selection: a NaN coordinate
    /// is picked only when k exceeds the number of non-NaN coordinates.
    #[test]
    fn top_k_never_selects_nan_over_non_nan(
        xs in prop::collection::vec(-100.0f32..100.0, 1..200),
        tags in prop::collection::vec(0u8..6, 1..200),
        k_frac in 0.05f32..1.0,
    ) {
        let mut xs = xs;
        inject_specials(&mut xs, &tags);
        let k = ((xs.len() as f32 * k_frac).ceil() as usize).clamp(1, xs.len());
        let picked = codec::top_k_by_magnitude(&xs, k);
        prop_assert_eq!(picked.len(), k);
        let non_nan = xs.iter().filter(|x| !x.is_nan()).count();
        let picked_nan = picked
            .iter()
            .filter(|&&(i, _)| xs[i as usize].is_nan())
            .count();
        prop_assert_eq!(
            picked_nan,
            k.saturating_sub(non_nan),
            "NaNs must only fill slots no non-NaN value could take"
        );
        // Indices are strictly increasing and values mirror the input.
        for w in picked.windows(2) {
            prop_assert!(w[0].0 < w[1].0);
        }
        for &(i, v) in &picked {
            prop_assert_eq!(v.to_bits(), xs[i as usize].to_bits());
        }
    }

    /// The scratch-arena encode path is payload-identical to the
    /// allocating `CodecSpec::encode` for every codec, including across
    /// buffer recycling.
    #[test]
    fn encode_with_scratch_matches_allocating_encode(
        params in prop::collection::vec(-10.0f32..10.0, 1..400),
        base in prop::collection::vec(-10.0f32..10.0, 1..400),
        frac in 0.05f64..1.0,
    ) {
        let n = params.len().min(base.len());
        let p = ParamVec(params[..n].to_vec());
        let b = ParamVec(base[..n].to_vec());
        let mut scratch = EncodeScratch::new();
        for codec in [
            CodecSpec::Identity,
            CodecSpec::QuantizeI8,
            CodecSpec::TopK { frac },
        ] {
            for _ in 0..2 {
                let enc = codec.encode_with(&p, &b, &mut scratch);
                prop_assert_eq!(&enc, &codec.encode(&p, &b), "{:?}", codec);
                prop_assert_eq!(enc.wire_bytes(), codec.encoded_bytes(n));
                let mut out = scratch.take_empty();
                enc.decode_into(&b, &mut out);
                prop_assert_eq!(&out, &enc.decode(&b), "{:?}", codec);
                scratch.recycle_dense(out);
                scratch.recycle(enc);
            }
        }
    }
}
