//! Allocation-count regression gate for the per-round fold/encode hot
//! path.
//!
//! The tentpole claim of the scratch-arena rework is that a steady-state
//! aggregation round — encode every contributor with error-feedback
//! compensation, fold the payloads, resolve the new global, recycle the
//! old one — performs **zero heap allocations** once the pools have
//! warmed up. This test pins that with a counting `#[global_allocator]`:
//! it runs warm-up rounds to size every pool, then asserts the measured
//! rounds allocate nothing.
//!
//! It lives in its own integration-test binary on purpose: the counter
//! is process-global, so no other test may run concurrently in this
//! process (one `#[test]` here, single-threaded by construction).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use tifl::comm::{CodecSpec, EncodeScratch, ErrorFeedback};
use tifl::fl::session::RoundPlan;
use tifl::fl::timeline::{schedule_plan_events, TimelineEvent};
use tifl::fl::{ClientUpdate, StreamingFold};
use tifl::obs::{RunObserver, TraceEvent, TraceSink};
use tifl::tensor::ParamVec;

struct CountingAlloc;

static COUNTING: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Run `f` with allocation counting enabled; returns how many heap
/// allocations (alloc/alloc_zeroed/realloc) it performed.
fn allocations_in(f: impl FnOnce()) -> usize {
    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    f();
    COUNTING.store(false, Ordering::SeqCst);
    ALLOCS.load(Ordering::SeqCst)
}

/// One aggregation round exactly as `Session::run_round` performs it:
/// pooled accumulator, per-contributor compensated encode + fold,
/// deferred delta bases, old global recycled into the arena.
fn round(
    codec: CodecSpec,
    global: &mut ParamVec,
    updates: &[ClientUpdate],
    weights: &mut Vec<f32>,
    feedback: &mut ErrorFeedback,
    scratch: &mut EncodeScratch,
) {
    weights.clear();
    weights.extend(updates.iter().map(|u| u.samples as f32));
    let acc = scratch.take_zeroed(global.len());
    let mut fold = StreamingFold::with_acc(acc, weights);
    let new_global = if matches!(codec, CodecSpec::Identity) {
        for u in updates {
            fold.fold(u);
        }
        fold.finish()
    } else {
        for u in updates {
            fold.fold_compensated(&codec, u, global, feedback, scratch);
        }
        fold.finish_against(global)
    }
    .expect("non-empty round");
    let old = std::mem::replace(global, new_global);
    scratch.recycle_dense(old);
}

#[test]
fn steady_state_fold_encode_round_is_allocation_free() {
    const PARAMS: usize = 4_096;
    const CLIENTS: usize = 6;

    let updates: Vec<ClientUpdate> = (0..CLIENTS)
        .map(|c| ClientUpdate {
            client: c,
            params: ParamVec(
                (0..PARAMS)
                    .map(|j| ((c * 131 + j * 7) as f32 * 0.013).sin() * 2.0)
                    .collect(),
            ),
            samples: 50 + c * 13,
        })
        .collect();

    for codec in [
        CodecSpec::Identity,
        CodecSpec::QuantizeI8,
        CodecSpec::TopK { frac: 0.25 },
    ] {
        let mut global = ParamVec::zeros(PARAMS);
        let mut weights = Vec::new();
        let mut feedback = ErrorFeedback::new();
        let mut scratch = EncodeScratch::new();

        // Warm-up: grows every pool buffer, residual vector and the
        // weights vec to steady-state capacity.
        for _ in 0..3 {
            round(
                codec,
                &mut global,
                &updates,
                &mut weights,
                &mut feedback,
                &mut scratch,
            );
        }

        let allocs = allocations_in(|| {
            for _ in 0..5 {
                round(
                    codec,
                    &mut global,
                    &updates,
                    &mut weights,
                    &mut feedback,
                    &mut scratch,
                );
            }
        });
        assert_eq!(
            allocs, 0,
            "{codec:?}: steady-state rounds allocated {allocs} times"
        );
    }

    // Tracing-enabled variant: with an active RunObserver (warm,
    // bounded ring) recording every event, the per-round trace
    // derivation plus the metrics folds must also be allocation-free —
    // observability enabled may not re-introduce hot-path allocation.
    // Same process, same test fn: the counting allocator is global.
    let plan = RoundPlan {
        round: 7,
        selected: vec![0, 1, 2, 3],
        responses: vec![(0, Some(2.5)), (1, Some(1.0)), (2, None), (3, Some(3.0))],
        contributors: vec![0, 1, 3],
        latency: 3.0,
    };
    let mut observer = RunObserver::new(64);
    let mut events: Vec<(f64, u32, TimelineEvent)> = Vec::new();
    let trace_round =
        |observer: &mut RunObserver, events: &mut Vec<(f64, u32, TimelineEvent)>, t0: f64| {
            schedule_plan_events(&plan, false, 20.0, events);
            observer.record(
                t0,
                TraceEvent::RoundStart {
                    round: plan.round,
                    selected: plan.selected.len() as u32,
                },
            );
            for &(t, _, ev) in events.iter() {
                let mapped = match ev {
                    TimelineEvent::Dispatch { client } => TraceEvent::Dispatch {
                        round: plan.round,
                        client: client as u32,
                    },
                    TimelineEvent::Complete { client } => TraceEvent::Complete {
                        round: plan.round,
                        client: client as u32,
                    },
                    TimelineEvent::TimedOut { client } => TraceEvent::TimedOut {
                        round: plan.round,
                        client: client as u32,
                    },
                    TimelineEvent::Cancelled { client } => TraceEvent::Cancelled {
                        round: plan.round,
                        client: client as u32,
                    },
                    TimelineEvent::RoundEnd => continue,
                };
                observer.record(t0 + t, mapped);
            }
            for &client in &plan.contributors {
                observer.record(
                    t0 + plan.latency,
                    TraceEvent::Fold {
                        round: plan.round,
                        client: client as u32,
                        wire_bytes: 1024,
                    },
                );
            }
            observer.record(t0 + plan.latency, TraceEvent::Eval { round: plan.round });
            observer.record(
                t0 + plan.latency,
                TraceEvent::RoundEnd {
                    round: plan.round,
                    latency: plan.latency,
                    contributors: plan.contributors.len() as u32,
                    bytes_up: 3 * 1024,
                    bytes_down: 4 * 1024,
                },
            );
        };

    // Warm-up sizes the scratch vec; the ring was preallocated in
    // `RunObserver::new`. The measured rounds then overflow the
    // 64-record ring many times over, so the wrap path is what's pinned.
    for i in 0..3 {
        trace_round(&mut observer, &mut events, i as f64 * 10.0);
    }
    let allocs = allocations_in(|| {
        for i in 0..32 {
            trace_round(&mut observer, &mut events, 100.0 + i as f64 * 10.0);
        }
    });
    assert_eq!(
        allocs, 0,
        "tracing-enabled rounds allocated {allocs} times with an active ring sink"
    );
    assert_eq!(observer.ring().len(), 64, "ring stayed at capacity");
    assert!(observer.ring().dropped() > 0, "wrap path was exercised");

    // Profiler-attached variant: the host-time phase profiler's hot
    // path (clock read on begin, span push + totals update on end)
    // must also stay off the heap once its span ring is preallocated —
    // attaching host profiling may not break the allocation gate.
    use tifl::obs::{FrozenClock, HostProfiler, Phase};
    let mut prof = HostProfiler::with_clock(32, FrozenClock::shared());
    // Warm one full cycle (the ring was preallocated by the
    // constructor; this just proves the API path before measuring).
    for r in 0..4u64 {
        let t = prof.begin();
        prof.end(Phase::Train, r, t);
    }
    let allocs = allocations_in(|| {
        for r in 0..64u64 {
            for phase in [Phase::Plan, Phase::Train, Phase::Fold, Phase::Eval] {
                let t = prof.begin();
                prof.end(phase, r, t);
            }
        }
    });
    assert_eq!(
        allocs, 0,
        "profiler-attached rounds allocated {allocs} times"
    );
    assert!(prof.dropped() > 0, "span-ring wrap path was exercised");
}
