//! Property tests for the execution engine's determinism contract:
//! `EventDriven{1}`, `EventDriven{4}`, `EventDriven{8}` and `Lockstep`
//! must produce
//! identical round timelines (the full per-round report series: times,
//! latencies, selections, aggregations, accuracies) and identical final
//! global weights, on randomly drawn small `cifar10_resource_het`
//! configurations across the composable spec axes.

use proptest::prelude::*;
use tifl::prelude::*;

/// A shrunken §5.1 resource-heterogeneity config: the real 5-group CPU
/// profile and selection width, scaled down to proptest speed.
fn small_resource_het(seed: u64, rounds: u64) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::cifar10_resource_het(seed);
    cfg.num_clients = 10; // 2 per hardware group
    cfg.clients_per_round = 2; // fits inside one tier
    cfg.rounds = rounds;
    cfg.data = DataScenario::Iid { per_client: 30 };
    cfg.model = ModelSpec::Mlp {
        input: 64,
        hidden: 16,
        classes: 10,
    };
    cfg.eval_every = 2;
    cfg.profiler = ProfilerConfig {
        sync_rounds: 2,
        tmax_sec: 1e6,
    };
    cfg
}

fn spec_for(scenario: u8) -> RunSpec {
    match scenario % 4 {
        0 => RunSpec::default(),
        1 => RunSpec {
            selection: SelectionStrategy::TierPolicy {
                policy: Policy::uniform(5),
            },
            ..RunSpec::default()
        },
        2 => RunSpec {
            aggregation: Some(AggregationMode::FirstK { factor: 1.6 }),
            ..RunSpec::default()
        },
        _ => RunSpec {
            selection: SelectionStrategy::Adaptive { config: None },
            local: LocalTraining::FedProx { mu: 0.05 },
            ..RunSpec::default()
        },
    }
}

proptest! {
    /// Backends and thread counts never change a run's outcome.
    #[test]
    fn backends_agree_on_timelines_and_final_weights(
        seed in 0u64..1_000,
        rounds in 2u64..5,
        scenario in 0u8..4,
    ) {
        let cfg = small_resource_het(seed, rounds);
        let spec = spec_for(scenario);

        let (lockstep, lockstep_session) =
            Runner::with_spec(&cfg, spec.clone()).run_with_session();
        for threads in [1usize, 4, 8] {
            let event_spec = RunSpec {
                backend: ExecBackend::EventDriven { threads },
                ..spec.clone()
            };
            let (event, event_session) =
                Runner::with_spec(&cfg, event_spec).run_with_session();
            // Identical round timelines: every RoundReport field —
            // virtual times, latencies, selection, aggregation order,
            // evaluated accuracies — compared exactly.
            prop_assert_eq!(
                &lockstep, &event,
                "scenario {} seed {} threads {}", scenario, seed, threads
            );
            // Identical final weights, bit for bit.
            prop_assert_eq!(
                lockstep_session.global_params(),
                event_session.global_params(),
                "final weights diverged: scenario {} seed {} threads {}",
                scenario, seed, threads
            );
        }
    }

    /// The asynchronous mode (event-driven only) is itself
    /// thread-count invariant and respects its staleness bound.
    #[test]
    fn async_mode_is_thread_count_invariant(
        seed in 0u64..500,
        steps in 3u64..8,
        max_staleness in 0u64..4,
    ) {
        let cfg = small_resource_het(seed, steps);
        let run = |threads: usize| {
            cfg.runner()
                .vanilla()
                .event_driven(threads)
                .async_aggregation(max_staleness)
                .run()
        };
        let one = run(1);
        let four = run(4);
        let eight = run(8);
        prop_assert_eq!(&one, &four, "seed {} staleness {}", seed, max_staleness);
        prop_assert_eq!(&one, &eight, "seed {} staleness {} (8 threads)", seed, max_staleness);
        prop_assert_eq!(one.rounds.len() as u64, steps);
        // Every aggregation step folds at most one update, and a large
        // staleness bound discards nothing.
        for r in &one.rounds {
            prop_assert!(r.aggregated.len() <= 1);
        }
    }
}
