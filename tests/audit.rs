//! Integration tests for the run-auditing & divergence-observability
//! layer, pinning the ISSUE's acceptance criteria:
//!
//! 1. **Digest chains** — order-sensitive, prefix-stable, collision-free
//!    across the runspec axes (proptested), and *backend-invariant*:
//!    the same cell on `Lockstep` and `EventDriven` chains to the same
//!    head, because backends are result knobs, never result changers;
//! 2. **`tifl diff`** — localizes an injected single-round perturbation
//!    to exactly that round, without re-running, in the library and
//!    through the binary (`--format json`);
//! 3. **`tifl audit --deny`** — catches one-byte artifact corruption
//!    and names the corrupt key;
//! 4. **`tifl merge`** — the union of two disjoint `--shard` half
//!    stores is byte-identical to the uninterrupted unsharded sweep;
//! 5. **Compatibility** — artifacts written before the digest field
//!    existed still load, validate, audit clean, and diff.

use proptest::prelude::*;
use tifl::prelude::*;

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tifl-audit-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A shrunken §5.1 resource-heterogeneity config (the `tests/sweep.rs`
/// scaling): real 5-group CPU profile, small data/model so a run is
/// milliseconds.
fn small_resource_het(seed: u64, rounds: u64) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::cifar10_resource_het(seed);
    cfg.num_clients = 10;
    cfg.clients_per_round = 2;
    cfg.rounds = rounds;
    cfg.data = DataScenario::Iid { per_client: 30 };
    cfg.model = ModelSpec::Mlp {
        input: 64,
        hidden: 16,
        classes: 10,
    };
    cfg.eval_every = 2;
    cfg.profiler = ProfilerConfig {
        sync_rounds: 2,
        tmax_sec: 1e6,
    };
    cfg
}

/// The pinned matrix: selection × both backends, 6 runs / 3 distinct
/// result cells.
fn backend_matrix() -> SweepManifest {
    let mut manifest = SweepManifest::new(small_resource_het(42, 4));
    manifest.axes.selection = vec![
        SelectionStrategy::Vanilla,
        SelectionStrategy::TierPolicy {
            policy: Policy::uniform(5),
        },
        SelectionStrategy::Adaptive { config: None },
    ];
    manifest.axes.backend = vec![
        ExecBackend::Lockstep,
        ExecBackend::EventDriven { threads: 2 },
    ];
    manifest
}

fn synthetic_round(i: u64, salt: u64) -> RoundReport {
    RoundReport {
        round: i,
        time: (i + 1) as f64 * 3.0,
        latency: 3.0,
        selected: vec![i as usize % 5, salt as usize % 7],
        aggregated: vec![i as usize % 5],
        accuracy: i.is_multiple_of(2).then(|| (salt % 100) as f64 / 100.0),
        loss: Some(1.0 + salt as f32 / 10.0),
        bytes_down: 100 + salt,
        bytes_up: 50 + i,
    }
}

fn synthetic_report(rounds: u64, salt: u64) -> TrainingReport {
    TrainingReport {
        policy: format!("synthetic-{salt}"),
        rounds: (0..rounds).map(|i| synthetic_round(i, salt)).collect(),
    }
}

// -- digest-chain properties -------------------------------------------------

proptest! {
    /// Swapping any two distinct rounds changes the chain head (order
    /// sensitivity), and the head over the first k rounds equals the
    /// k-th intermediate head (prefix property).
    #[test]
    fn prop_chain_is_order_sensitive_and_prefix_stable(
        rounds in 2u64..8,
        salt in 0u64..1000,
        i in 0usize..8,
        j in 0usize..8,
    ) {
        let report = synthetic_report(rounds, salt);
        let heads = report.chain_heads();
        prop_assert_eq!(heads.len() as u64, rounds);
        prop_assert_eq!(*heads.last().unwrap(), report.digest_chain());

        // Prefix property: truncating to k rounds reproduces head k-1.
        for k in 1..=rounds as usize {
            let mut prefix = report.clone();
            prefix.rounds.truncate(k);
            prop_assert_eq!(prefix.digest_chain(), heads[k - 1]);
        }

        // Order sensitivity: swapping two distinct rounds changes the
        // head (round indices differ, so the contents always differ).
        let (i, j) = (i % rounds as usize, j % rounds as usize);
        if i != j {
            let mut swapped = report.clone();
            swapped.rounds.swap(i, j);
            prop_assert!(swapped.digest_chain() != report.digest_chain());
        }
    }

    /// Distinct round contents digest distinctly, and any single-field
    /// perturbation of a round moves the whole chain head.
    #[test]
    fn prop_chain_separates_content(
        rounds in 1u64..6,
        salt_a in 0u64..500,
        salt_b in 500u64..1000,
        victim in 0usize..6,
    ) {
        let a = synthetic_report(rounds, salt_a);
        let b = synthetic_report(rounds, salt_b);
        prop_assert!(a.digest_chain() != b.digest_chain());

        let mut perturbed = a.clone();
        let victim = victim % rounds as usize;
        perturbed.rounds[victim].bytes_up ^= 1;
        prop_assert!(perturbed.digest_chain() != a.digest_chain());
        // And the diff pins the divergence to exactly the victim.
        let diff = a.diff("a", &perturbed, "b");
        match diff.divergence {
            Divergence::DivergedAt { round, .. } => prop_assert_eq!(round, victim as u64),
            other => prop_assert!(false, "expected DivergedAt, got {:?}", other),
        }
    }
}

/// Collision freedom across the runspec axes, pinned on real runs: the
/// 6-run backend matrix yields exactly 3 distinct chain heads — one
/// per selection strategy — with the two backends of each cell
/// chaining *equal* (backends are result-invariant, so equal heads
/// across backends is the determinism contract, not a collision).
#[test]
fn chains_separate_cells_and_ignore_backends() {
    let manifest = backend_matrix();
    let runs = manifest.expand();
    assert_eq!(runs.len(), 6);
    let sweep = SweepScheduler::new(2).execute(&runs, None, false);
    assert_eq!(sweep.failed(), 0);
    let reports = sweep.into_reports();

    let heads: Vec<Digest128> = reports.iter().map(TrainingReport::digest_chain).collect();
    let distinct: std::collections::BTreeSet<Digest128> = heads.iter().copied().collect();
    assert_eq!(distinct.len(), 3, "one head per selection strategy");
    // Expansion order is selection-major (backend innermost): pairs
    // (0,1), (2,3), (4,5) are the same cell on the two backends.
    for pair in heads.chunks(2) {
        assert_eq!(pair[0], pair[1], "backends must chain identically");
    }
}

// -- diff --------------------------------------------------------------------

#[test]
fn diff_cli_localizes_an_injected_perturbation() {
    let dir = tmp_dir("diff-cli");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let a = synthetic_report(5, 77);
    let mut b = a.clone();
    b.rounds[3].accuracy = Some(0.123);
    let a_path = dir.join("a.json");
    let b_path = dir.join("b.json");
    std::fs::write(&a_path, serde_json::to_string_pretty(&a).unwrap()).expect("write");
    std::fs::write(&b_path, serde_json::to_string_pretty(&b).unwrap()).expect("write");

    // Identical operands: exit 0, says "identical".
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_tifl"))
        .args(["diff", a_path.to_str().unwrap(), a_path.to_str().unwrap()])
        .output()
        .expect("tifl runs");
    assert!(out.status.success(), "self-diff must exit 0");
    assert!(String::from_utf8_lossy(&out.stdout).contains("identical"));

    // Diverging operands: exit nonzero, human output names round 3.
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_tifl"))
        .args(["diff", a_path.to_str().unwrap(), b_path.to_str().unwrap()])
        .output()
        .expect("tifl runs");
    assert!(!out.status.success(), "diverging diff must exit nonzero");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("first divergent round: 3"),
        "human output: {text}"
    );
    assert!(text.contains("accuracy"), "human output: {text}");

    // JSON output parses back into the library's DiffReport.
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_tifl"))
        .args([
            "diff",
            a_path.to_str().unwrap(),
            b_path.to_str().unwrap(),
            "--format",
            "json",
        ])
        .output()
        .expect("tifl runs");
    let parsed: DiffReport =
        serde_json::from_str(&String::from_utf8_lossy(&out.stdout)).expect("json parses");
    assert_eq!(
        parsed,
        a.diff(a_path.to_str().unwrap(), &b, b_path.to_str().unwrap())
    );
    match parsed.divergence {
        Divergence::DivergedAt { round, deltas, .. } => {
            assert_eq!(round, 3);
            assert!(deltas.iter().any(|d| d.field == "accuracy"));
        }
        other => panic!("expected DivergedAt, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

// -- audit -------------------------------------------------------------------

/// Bump the first digit of the first `"bytes_up"` value in an
/// artifact's JSON — a parse-safe, digest-breaking one-byte flip.
fn flip_one_byte(path: &std::path::Path) {
    let text = std::fs::read_to_string(path).expect("read artifact");
    let at = text.find("\"bytes_up\"").expect("field present");
    let digit = text[at..]
        .char_indices()
        .find(|(_, c)| c.is_ascii_digit())
        .map(|(i, _)| at + i)
        .expect("digit after field");
    let mut bytes = text.into_bytes();
    bytes[digit] = if bytes[digit] == b'9' {
        b'0'
    } else {
        bytes[digit] + 1
    };
    std::fs::write(path, bytes).expect("write corrupted artifact");
}

#[test]
fn audit_cli_catches_one_byte_corruption_and_names_the_key() {
    // One real run into a store, via the library (cheap: tiny config).
    let dir = tmp_dir("audit-cli");
    let store_dir = dir.join("arts");
    let mut builder = SweepBuilder::new(ExperimentConfig::tiny(11));
    let sweep = builder.rounds(3).workers(1).out(&store_dir).run();
    assert_eq!(sweep.completed(), 1);
    let store = RunStore::open(&store_dir).expect("store opens");
    let key = store.keys()[0];

    let audit = |deny: bool| {
        let mut args = vec!["audit", store_dir.to_str().unwrap()];
        if deny {
            args.push("--deny");
        }
        std::process::Command::new(env!("CARGO_BIN_EXE_tifl"))
            .args(&args)
            .output()
            .expect("tifl runs")
    };

    // Clean store: exits 0 even under --deny.
    let out = audit(true);
    assert!(out.status.success(), "clean store must pass --deny");
    assert!(String::from_utf8_lossy(&out.stdout).contains("0 findings"));

    // Flip one byte inside the report: --deny exits nonzero and the
    // output names the corrupt key; without --deny it still reports
    // but exits 0.
    flip_one_byte(&store.path_of(key));
    let out = audit(true);
    assert!(!out.status.success(), "corruption must fail --deny");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains(&key.to_string()), "must name the key: {text}");
    assert!(text.contains("corrupt"), "must flag corruption: {text}");
    let out = audit(false);
    assert!(out.status.success(), "report-only mode exits 0");

    // --format json --out writes a machine-readable AuditReport.
    let json_path = dir.join("audit.json");
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_tifl"))
        .args([
            "audit",
            store_dir.to_str().unwrap(),
            "--format",
            "json",
            "--out",
            json_path.to_str().unwrap(),
        ])
        .output()
        .expect("tifl runs");
    assert!(out.status.success());
    let from_stdout: AuditReport =
        serde_json::from_str(&String::from_utf8_lossy(&out.stdout)).expect("stdout json");
    let from_file: AuditReport =
        serde_json::from_str(&std::fs::read_to_string(&json_path).expect("file"))
            .expect("file json");
    assert_eq!(from_stdout, from_file);
    assert_eq!(from_file.artifacts, 1);
    assert!(!from_file.is_clean());
    assert_eq!(from_file.findings[0].key, Some(key));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn audit_flags_leftover_tmp_files() {
    let dir = tmp_dir("audit-tmp");
    let store = RunStore::open(&dir).expect("store opens");
    std::fs::write(dir.join("deadbeef.json.tmp"), "{").expect("write");
    let report = audit_store(&store);
    assert!(!report.is_clean());
    assert_eq!(report.findings[0].kind, "tmp-leftover");
    let _ = std::fs::remove_dir_all(&dir);
}

// -- shard + merge -----------------------------------------------------------

#[test]
fn merged_shard_stores_are_byte_identical_to_the_unsharded_sweep() {
    let manifest = backend_matrix();
    let runs = manifest.expand();
    assert_eq!(runs.len(), 6);

    // Reference: the uninterrupted, unsharded sweep.
    let full_dir = tmp_dir("shard-full");
    let full_store = RunStore::open(&full_dir).expect("store opens");
    let full = SweepScheduler::new(2).execute(&runs, Some(&full_store), false);
    assert_eq!(full.completed(), 6);

    // Two disjoint halves, as two hosts would run them.
    let half_dirs = [tmp_dir("shard-a"), tmp_dir("shard-b")];
    for (i, dir) in half_dirs.iter().enumerate() {
        let store = RunStore::open(dir).expect("store opens");
        let shard = shard_runs(&runs, i, 2);
        assert_eq!(shard.len(), 3);
        let sweep = SweepScheduler::new(2).execute(&shard, Some(&store), false);
        assert_eq!(sweep.completed(), 3);
    }

    // Merge through the binary with --deny: must pass (no conflicts).
    let merged_dir = tmp_dir("shard-merged");
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_tifl"))
        .args([
            "merge",
            half_dirs[0].to_str().unwrap(),
            half_dirs[1].to_str().unwrap(),
            "--out",
            merged_dir.to_str().unwrap(),
            "--deny",
        ])
        .output()
        .expect("tifl runs");
    assert!(
        out.status.success(),
        "clean merge must pass --deny: {}",
        String::from_utf8_lossy(&out.stdout)
    );

    // Byte-identical to the unsharded sweep, key for key (the summary
    // sidecar is per-execution and deliberately not merged).
    let merged = RunStore::open(&merged_dir).expect("store opens");
    assert_eq!(merged.keys(), full_store.keys());
    for key in full_store.keys() {
        assert_eq!(
            std::fs::read(merged.path_of(key)).expect("merged artifact"),
            std::fs::read(full_store.path_of(key)).expect("full artifact"),
            "artifact {key} must be byte-identical"
        );
    }
    assert!(!merged.summary_path().exists());

    // A conflicting overlap fails --deny: re-merge after perturbing a
    // digest-covered byte in one half (parse-safe digit bump).
    let victim = RunStore::open(&half_dirs[0]).expect("store opens");
    flip_one_byte(&victim.path_of(victim.keys()[0]));
    let remerge_dir = tmp_dir("shard-remerge");
    // Seed the output with the pristine full store's copy so the
    // overlap comparison sees the conflict.
    let remerge_store = RunStore::open(&remerge_dir).expect("store opens");
    merge_stores(std::slice::from_ref(&full_dir), &remerge_store).expect("seed merge");
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_tifl"))
        .args([
            "merge",
            half_dirs[0].to_str().unwrap(),
            half_dirs[1].to_str().unwrap(),
            "--out",
            remerge_dir.to_str().unwrap(),
            "--deny",
        ])
        .output()
        .expect("tifl runs");
    assert!(
        !out.status.success(),
        "conflicting merge must fail --deny: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("conflict"));

    for dir in [full_dir, merged_dir, remerge_dir]
        .into_iter()
        .chain(half_dirs)
    {
        let _ = std::fs::remove_dir_all(dir);
    }
}

#[test]
fn sweep_cli_shard_halves_union_to_the_full_expansion() {
    let mut manifest = SweepManifest::new(ExperimentConfig::tiny(21));
    manifest.rounds = Some(2);
    manifest.axes.seeds = vec![1, 2, 3];
    let runs = manifest.expand();
    assert_eq!(runs.len(), 3);

    let dir = tmp_dir("cli-shard");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let manifest_path = dir.join("sweep.json");
    std::fs::write(
        &manifest_path,
        serde_json::to_string_pretty(&manifest).unwrap(),
    )
    .expect("write manifest");

    let mut shard_keys = Vec::new();
    for i in 0..2 {
        let arts = dir.join(format!("half-{i}"));
        let out = std::process::Command::new(env!("CARGO_BIN_EXE_tifl"))
            .args([
                "sweep",
                manifest_path.to_str().unwrap(),
                "--workers",
                "1",
                "--out",
                arts.to_str().unwrap(),
                "--shard",
                &format!("{i}/2"),
            ])
            .output()
            .expect("tifl runs");
        assert!(
            out.status.success(),
            "shard {i}/2 failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        shard_keys.push(RunStore::open(&arts).expect("store opens").keys());
    }
    // Disjoint and covering.
    assert_eq!(shard_keys[0].len() + shard_keys[1].len(), 3);
    let mut union: Vec<RunKey> = shard_keys.concat();
    union.sort_unstable();
    union.dedup();
    let mut expected: Vec<RunKey> = runs.iter().map(|r| r.key).collect();
    expected.sort_unstable();
    assert_eq!(union, expected);

    // A malformed shard spec is rejected.
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_tifl"))
        .args([
            "sweep",
            manifest_path.to_str().unwrap(),
            "--shard",
            "2/2",
            "--out",
            dir.join("bad").to_str().unwrap(),
        ])
        .output()
        .expect("tifl runs");
    assert!(!out.status.success(), "--shard 2/2 must be rejected");
    let _ = std::fs::remove_dir_all(&dir);
}

// -- compatibility & trace satellites ----------------------------------------

#[test]
fn predigest_artifacts_load_validate_audit_and_diff() {
    // Simulate a store written before the digest/metrics fields
    // existed: strip both from a fresh artifact's JSON. Everything —
    // load, resume validation, audit, diff — must still work, with the
    // chain computed on the fly.
    let dir = tmp_dir("compat");
    let mut builder = SweepBuilder::new(ExperimentConfig::tiny(31));
    builder.rounds(3).workers(1).out(&dir);
    assert_eq!(builder.run().completed(), 1);
    let store = RunStore::open(&dir).expect("store opens");
    let key = store.keys()[0];
    let request = store.load(key).expect("loads").request;

    let text = std::fs::read_to_string(store.path_of(key)).expect("read");
    let mut value: serde::Value = serde_json::from_str(&text).expect("parses");
    strip_fields(&mut value, &["digest", "metrics"]);
    std::fs::write(
        store.path_of(key),
        serde_json::to_string_pretty(&value).expect("renders"),
    )
    .expect("rewrite");

    let artifact = store.load(key).expect("pre-digest artifact loads");
    assert_eq!(artifact.digest, None);
    assert_eq!(artifact.metrics, None);
    assert!(store.validates(key, &request), "resume still validates");
    let audit = audit_store(&store);
    assert!(
        audit.is_clean(),
        "pre-digest artifact audits clean: {:?}",
        audit.findings
    );
    // Diffing a pre-digest artifact against itself through the binary.
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_tifl"))
        .args([
            "diff",
            store.path_of(key).to_str().unwrap(),
            store.path_of(key).to_str().unwrap(),
        ])
        .output()
        .expect("tifl runs");
    assert!(out.status.success(), "pre-digest self-diff exits 0");
    let _ = std::fs::remove_dir_all(&dir);
}

fn strip_fields(value: &mut serde::Value, names: &[&str]) {
    if let serde::Value::Object(fields) = value {
        fields.retain(|(name, _)| !names.contains(&name.as_str()));
    }
}

#[test]
fn trace_cli_explains_metricless_artifacts_and_bare_reports() {
    let dir = tmp_dir("trace-msg");
    std::fs::create_dir_all(&dir).expect("temp dir");

    // An artifact without metrics: clear message, nonzero exit.
    let request = RunRequest {
        experiment: ExperimentConfig::tiny(41),
        rounds: Some(2),
        seed: None,
        clients_per_round: None,
        spec: RunSpec::default(),
    };
    let report = request.run();
    let key = RunKey::of(&request);
    let mut artifact = RunArtifact::new(key, request, report.clone());
    artifact.metrics = None;
    let art_path = dir.join("artifact.json");
    std::fs::write(&art_path, serde_json::to_string_pretty(&artifact).unwrap()).expect("write");
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_tifl"))
        .args(["trace", art_path.to_str().unwrap()])
        .output()
        .expect("tifl runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("artifact has no metrics; re-run with run_observed"),
        "stderr: {err}"
    );

    // A bare training report: explanatory message, not a parse panic.
    let report_path = dir.join("report.json");
    std::fs::write(&report_path, serde_json::to_string_pretty(&report).unwrap()).expect("write");
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_tifl"))
        .args(["trace", report_path.to_str().unwrap()])
        .output()
        .expect("tifl runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("bare training report"), "stderr: {err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn trace_cli_verifies_stored_metrics_on_artifacts() {
    // A sweep-written artifact carries metrics; tracing it re-runs the
    // request and must report the regenerated metrics matching.
    let dir = tmp_dir("trace-verify");
    let mut builder = SweepBuilder::new(ExperimentConfig::tiny(51));
    builder.rounds(2).workers(1).out(&dir);
    assert_eq!(builder.run().completed(), 1);
    let store = RunStore::open(&dir).expect("store opens");
    let path = store.path_of(store.keys()[0]);
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_tifl"))
        .args(["trace", path.to_str().unwrap()])
        .output()
        .expect("tifl runs");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "stderr: {err}");
    assert!(err.contains("regenerated metrics match"), "stderr: {err}");
    let _ = std::fs::remove_dir_all(&dir);
}
