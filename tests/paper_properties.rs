//! Tests pinning the paper's analytical claims to the implementation at
//! small scale: straggler probability (§3.2), the Eq. 6 estimator
//! (§4.5, Table 2), and the DP amplification accounting (§4.6).

use tifl::core::analysis;
use tifl::core::estimator;
use tifl::core::privacy::{compare, DpGuarantee};
use tifl::prelude::*;

/// §3.2: empirical straggler-hit frequency under vanilla selection must
/// match the closed-form Pr_s.
#[test]
fn vanilla_straggler_rate_matches_closed_form() {
    let mut cfg = ExperimentConfig::tiny(21);
    cfg.rounds = 400;
    cfg.eval_every = 1000; // skip accuracy work, we only need selections
    let mut runner = cfg.runner();
    let assignment = runner.tiers().clone();
    let report = runner.vanilla().run();

    let slowest: &[usize] = &assignment.tiers.last().unwrap().clients;
    let hits = report
        .rounds
        .iter()
        .filter(|r| r.selected.iter().any(|c| slowest.contains(c)))
        .count();
    let empirical = hits as f64 / report.rounds.len() as f64;
    let theoretical = analysis::prob_hit_stragglers(
        cfg.num_clients as u64,
        slowest.len() as u64,
        cfg.clients_per_round as u64,
    );
    assert!(
        (empirical - theoretical).abs() < 0.08,
        "empirical {empirical} vs theoretical {theoretical}"
    );
}

/// §3.2 conclusion: vanilla rounds are bounded by stragglers, so the
/// mean vanilla round latency approaches the slowest tier's latency.
#[test]
fn vanilla_round_latency_dominated_by_slow_tier() {
    let mut cfg = ExperimentConfig::tiny(22);
    cfg.cpu_profile = tifl::sim::resource::profiles::CIFAR.to_vec();
    cfg.rounds = 60;
    let mut runner = cfg.runner();
    let lats = runner.tiers().tier_latencies();
    let report = runner.vanilla().run();
    let mean = report.mean_round_latency();
    // Mean vanilla latency should be far closer to the slowest tier than
    // to the fastest.
    assert!(
        mean > lats[2],
        "mean vanilla latency {mean} unexpectedly below median tier {}",
        lats[2]
    );
}

/// Table 2: the Eq. 6 estimate tracks measured time for point-mass and
/// uniform policies (tolerances widened for the tiny config's jitter).
#[test]
fn estimator_tracks_measurements() {
    let mut cfg = ExperimentConfig::tiny(23);
    cfg.rounds = 100;
    cfg.eval_every = 1000;
    let mut runner = cfg.runner();
    for policy in [Policy::slow(5), Policy::uniform(5), Policy::fast(5)] {
        let est = runner.estimate(&policy);
        let actual = runner.policy(&policy).run().total_time();
        let err = estimator::mape(est, actual);
        assert!(
            err < 25.0,
            "policy {}: MAPE {err}% (est {est}, actual {actual})",
            policy.name
        );
    }
}

/// Eq. 6 sanity: expected time orders policies the same way measurements
/// do.
#[test]
fn estimator_preserves_policy_ordering() {
    let cfg = ExperimentConfig::tiny(24);
    let (assignment, _) = cfg.profile_and_tier();
    let est = |p: &Policy| estimator::estimate_for_policy(&assignment, p, 100);
    assert!(est(&Policy::fast(5)) < est(&Policy::uniform(5)));
    assert!(est(&Policy::uniform(5)) < est(&Policy::slow(5)));
}

/// §4.6: the uniform tier policy yields exactly the vanilla sampling
/// rate; skewed policies weaken amplification but keep the (qε, qδ) form.
#[test]
fn privacy_accounting_matches_section_46() {
    let base = DpGuarantee::new(1.0, 1e-5);
    let uniform = compare(base, 50, 5, &[10; 5], &Policy::uniform(5).probs);
    assert!((uniform.q_max - uniform.q_vanilla).abs() < 1e-12);

    let fast = compare(base, 50, 5, &[10; 5], &Policy::fast(5).probs);
    assert!(fast.q_max > uniform.q_max);
    // Amplified guarantees are always at least as strong as the base.
    assert!(fast.tiered.at_least_as_strong_as(&base));
    assert!(fast.vanilla.at_least_as_strong_as(&base));
}

/// §5.2.3: stronger non-IID skew must hurt vanilla accuracy (the Fig. 1b
/// / Fig. 4 ordering IID >= non-IID(5) >= non-IID(2)), at small scale.
#[test]
fn noniid_skew_degrades_accuracy() {
    let acc = |k: usize| {
        let mut cfg = ExperimentConfig::cifar10_noniid(k, 25);
        cfg.num_clients = 10;
        cfg.clients_per_round = 2;
        cfg.rounds = 60;
        cfg.eval_every = 10;
        cfg.data = tifl::core::experiment::DataScenario::ClassLimit { per_client: 100, k };
        cfg.runner().vanilla().run().best_accuracy()
    };
    let a10 = acc(10);
    let a2 = acc(2);
    assert!(
        a10 > a2 + 0.03,
        "non-IID(2) ({a2}) should trail non-IID(10) ({a10})"
    );
}

/// §4.2: tier membership reflects the hardware groups when data is
/// homogeneous — profiling recovers the planted resource heterogeneity.
#[test]
fn tiers_recover_hardware_groups() {
    let mut cfg = ExperimentConfig::tiny(26);
    cfg.cpu_profile = tifl::sim::resource::profiles::CIFAR.to_vec();
    // Drop the fixed protocol overhead so compute dominates latency and
    // the planted hardware ordering is recoverable even for the tiny
    // test model.
    cfg.latency.base_overhead_sec = 0.0;
    let (assignment, _) = cfg.profile_and_tier();
    // Clients 0..2 are on the 4-CPU group (10 clients / 5 groups = 2 per
    // group): they must land in the fastest tier.
    assert_eq!(assignment.tier_of(0), Some(0));
    assert_eq!(assignment.tier_of(1), Some(0));
    // Clients 8..10 are on the 0.1-CPU group: slowest tier.
    assert_eq!(assignment.tier_of(8), Some(4));
    assert_eq!(assignment.tier_of(9), Some(4));
}
