//! Integration tests for the system extensions: related-work baselines
//! (over-selection, FedCS, FedProx), DP client updates, performance
//! drift with periodic re-profiling, and config serialisation.

use tifl::core::experiment::DataScenario;
use tifl::fl::client::DpNoiseConfig;
use tifl::prelude::*;
use tifl::sim::DriftModel;

#[test]
fn overselection_beats_waitall_on_time_and_keeps_learning() {
    let mut cfg = ExperimentConfig::tiny(41);
    cfg.cpu_profile = tifl::sim::resource::profiles::CIFAR.to_vec();
    cfg.rounds = 30;
    let mut runner = cfg.runner();
    let vanilla = runner.vanilla().run();
    let over = runner.overselect(1.3).run();
    assert!(over.total_time() < vanilla.total_time());
    assert!(over.final_accuracy() > 0.4, "over-selection still trains");
    assert!(over.discarded_work_fraction() > 0.0);
}

#[test]
fn fedcs_deadline_controls_round_latency() {
    let mut cfg = ExperimentConfig::tiny(42);
    cfg.cpu_profile = tifl::sim::resource::profiles::CIFAR.to_vec();
    cfg.latency.base_overhead_sec = 0.0;
    cfg.rounds = 30;
    let mut runner = cfg.runner();
    let lats = runner.tiers().tier_latencies();
    let deadline = (lats[1] + lats[2]) / 2.0;
    let report = runner.deadline(deadline).run();
    assert_eq!(runner.profile_count(), 1, "deadline run reuses the profile");
    // Rounds stay within ~deadline (plus jitter slack).
    assert!(
        report.mean_round_latency() < deadline * 1.3,
        "mean latency {} vs deadline {deadline}",
        report.mean_round_latency()
    );
}

#[test]
fn fedprox_stays_closer_to_global_under_noniid() {
    let mut cfg = ExperimentConfig::tiny(43);
    cfg.data = DataScenario::ClassLimit {
        per_client: 40,
        k: 2,
    };
    // 30 rounds, not 20: with only 2 clients/round on a k=2 non-IID
    // split, 20 rounds leaves accuracy right at the 0.2 floor (~0.198
    // under the vendored RNG stream); 30 rounds clears it with margin
    // without slowing the suite meaningfully.
    cfg.rounds = 30;
    let mut runner = cfg.runner();
    let plain = runner.vanilla().run();
    let prox = runner.fedprox(0.5).run();
    assert_eq!(prox.policy, "fedprox(0.5)");
    // Both learn; FedProx must at least run to completion with the same
    // round structure.
    assert_eq!(plain.rounds.len(), prox.rounds.len());
    assert!(prox.final_accuracy() > 0.2);
}

#[test]
fn dp_noise_degrades_accuracy_monotonically_in_expectation() {
    let accuracy_at = |z: f32| {
        let mut cfg = ExperimentConfig::tiny(44);
        cfg.rounds = 30;
        cfg.client.dp = Some(DpNoiseConfig {
            clip: 1.0,
            noise_multiplier: z,
        });
        cfg.runner().vanilla().run().final_accuracy()
    };
    let clean = accuracy_at(0.0);
    let noisy = accuracy_at(1.0);
    assert!(
        clean > noisy + 0.1,
        "heavy DP noise should hurt accuracy: clean {clean}, noisy {noisy}"
    );
}

#[test]
fn dp_updates_compose_with_tiering() {
    let mut cfg = ExperimentConfig::tiny(45);
    cfg.rounds = 40;
    cfg.client.dp = Some(DpNoiseConfig {
        clip: 1.0,
        noise_multiplier: 0.001,
    });
    let report = cfg.runner().policy(&Policy::uniform(5)).run();
    assert_eq!(report.rounds.len(), 40);
    assert!(
        report.final_accuracy() > 0.3,
        "mild DP noise should still train"
    );
}

#[test]
fn sinusoidal_drift_changes_latencies_over_time() {
    let mut cfg = ExperimentConfig::tiny(46);
    cfg.latency.jitter_sigma = 0.0;
    cfg.latency.base_overhead_sec = 0.0;
    cfg.drift = DriftModel::Sinusoidal {
        period: 10.0,
        amplitude: 0.5,
        devices: 10,
    };
    let session = cfg.make_session();
    let task = session.task_for(0);
    // Device 0 has phase 0: round 0 sits at the sine's zero crossing
    // (scale 1.0) while round 2 sits near the crest (scale ~1.48).
    let l0 = session.cluster().response(0, 0, &task).unwrap();
    let l2 = session.cluster().response(0, 2, &task).unwrap();
    assert!(
        (l0 - l2).abs() / l0 > 0.12,
        "quarter-period apart should differ: {l0} vs {l2}"
    );
}

#[test]
fn experiment_config_json_round_trip() {
    let mut cfg = ExperimentConfig::cifar10_combine(5, 7);
    cfg.aggregation = AggregationMode::FirstK { factor: 1.3 };
    cfg.drift = DriftModel::RegimeSwitch {
        at_round: 100,
        factors: vec![0.5, 1.0],
    };
    cfg.client.dp = Some(DpNoiseConfig {
        clip: 1.0,
        noise_multiplier: 0.1,
    });
    let json = serde_json::to_string_pretty(&cfg).unwrap();
    let back: ExperimentConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(back, cfg);
}

#[test]
fn old_configs_without_new_fields_still_parse() {
    // SessionConfig grew `aggregation` after the initial release shape;
    // serde(default) must keep old JSON working.
    let json = r#"{
        "model": {"Mlp": {"input": 64, "hidden": 16, "classes": 10}},
        "client": {
            "batch_size": 10, "local_epochs": 1,
            "optimizer": {"RmsProp": {"lr": 0.01}}, "lr_round_decay": 0.995
        },
        "clients_per_round": 2, "rounds": 5, "eval_every": 1,
        "tmax_sec": 1000.0, "seed": 1
    }"#;
    let cfg: SessionConfig = serde_json::from_str(json).unwrap();
    assert_eq!(cfg.aggregation, AggregationMode::WaitAll);
    assert_eq!(cfg.client.proximal_mu, 0.0);
    assert!(cfg.client.dp.is_none());
}

#[test]
fn reprofiling_matches_static_when_nothing_drifts() {
    // Without drift, re-profiling rebuilds the same tiers, so only the
    // per-segment selector seeds differ; totals should be close.
    let mut cfg = ExperimentConfig::tiny(47);
    cfg.cpu_profile = tifl::sim::resource::profiles::CIFAR.to_vec();
    cfg.rounds = 24;
    let mut runner = cfg.runner();
    let stat = runner.policy(&Policy::uniform(5)).run();
    let re = runner.reprofile_every(8).run();
    assert_eq!(stat.rounds.len(), re.rounds.len());
    let ratio = re.total_time() / stat.total_time();
    assert!(
        (0.3..3.0).contains(&ratio),
        "same-regime reprofiling should stay in the same ballpark, ratio {ratio}"
    );
}
