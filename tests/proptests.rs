//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;
use tifl::core::analysis;
use tifl::core::estimator;
use tifl::data::partition;
use tifl::prelude::*;
use tifl::tensor::{seed_rng, ParamVec};

proptest! {
    /// Tiering is a partition: every live client appears in exactly one
    /// tier, tiers are latency-ordered, no dropout appears anywhere.
    #[test]
    fn tiering_is_a_partition(
        latencies in prop::collection::vec(
            prop::option::weighted(0.9, 0.1f64..1000.0), 10..200),
        m in 1usize..8,
    ) {
        let live = latencies.iter().flatten().count();
        prop_assume!(live >= m);
        let cfg = TieringConfig { num_tiers: m, ..Default::default() };
        let a = TierAssignment::from_latencies(&latencies, &cfg);

        // Completeness + uniqueness.
        let mut seen = vec![0usize; latencies.len()];
        for tier in &a.tiers {
            for &c in &tier.clients {
                seen[c] += 1;
            }
        }
        for (c, l) in latencies.iter().enumerate() {
            prop_assert_eq!(seen[c], usize::from(l.is_some()), "client {}", c);
        }

        // Latency ordering across tiers.
        let lats = a.tier_latencies();
        for w in lats.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }

        // Tier means bound their members' extremes.
        for tier in &a.tiers {
            let min = tier.clients.iter()
                .map(|&c| latencies[c].unwrap())
                .fold(f64::INFINITY, f64::min);
            let max = tier.clients.iter()
                .map(|&c| latencies[c].unwrap())
                .fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(tier.avg_latency >= min - 1e-9);
            prop_assert!(tier.avg_latency <= max + 1e-9);
        }
    }

    /// FedAvg stays inside the convex hull of its inputs.
    #[test]
    fn weighted_mean_is_convex_combination(
        values in prop::collection::vec(
            prop::collection::vec(-100.0f32..100.0, 4), 1..10),
        weights in prop::collection::vec(1u32..1000, 10),
    ) {
        let items: Vec<(ParamVec, f32)> = values.iter()
            .zip(&weights)
            .map(|(v, &w)| (ParamVec(v.clone()), w as f32))
            .collect();
        let mean = ParamVec::weighted_mean(&items);
        for dim in 0..4 {
            let lo = values.iter().map(|v| v[dim]).fold(f32::INFINITY, f32::min);
            let hi = values.iter().map(|v| v[dim]).fold(f32::NEG_INFINITY, f32::max);
            prop_assert!(mean.0[dim] >= lo - 1e-3);
            prop_assert!(mean.0[dim] <= hi + 1e-3);
        }
    }

    /// Partitioners conserve sample counts and respect class limits.
    #[test]
    fn class_limit_partition_invariants(
        clients in 2usize..30,
        k in 1usize..10,
        seed in 0u64..1000,
    ) {
        let per_client = k * 20;
        let p = partition::class_limit(clients, per_client, 10, k, &mut seed_rng(seed));
        prop_assert_eq!(p.num_clients(), clients);
        prop_assert_eq!(p.total_samples(), clients * per_client);
        for c in 0..clients {
            prop_assert!(p.distinct_classes(c) <= k);
            prop_assert_eq!(p.labels[c].len(), per_client);
        }
    }

    /// Quantity-skew conserves the total and orders group volumes.
    #[test]
    fn quantity_skew_invariants(seed in 0u64..1000) {
        let p = partition::quantity_skew(
            50, 20_000, 10, &[0.10, 0.15, 0.20, 0.25, 0.30], &mut seed_rng(seed));
        let total: usize = p.total_samples();
        prop_assert!((total as i64 - 20_000).abs() < 50, "total {}", total);
        let sizes = p.sizes();
        for g in 0..4 {
            prop_assert!(sizes[g * 10] < sizes[(g + 1) * 10]);
        }
    }

    /// The straggler-probability closed form is a probability, monotone
    /// in the straggler-pool size, and bounded below by Eq. 5.
    #[test]
    fn straggler_probability_properties(
        k in 2u64..500,
        c_frac in 0.01f64..0.9,
        s_frac in 0.01f64..0.9,
    ) {
        let c = ((k as f64 * c_frac) as u64).max(1);
        let s = ((k as f64 * s_frac) as u64).max(1);
        let p = analysis::prob_hit_stragglers(k, s, c);
        prop_assert!((0.0..=1.0).contains(&p));
        let bound = analysis::prob_hit_stragglers_lower_bound(k, s, c);
        prop_assert!(p >= bound - 1e-9, "p {} < bound {}", p, bound);
        if s < k {
            let p_more = analysis::prob_hit_stragglers(k, s + 1, c);
            prop_assert!(p_more >= p - 1e-12);
        }
    }

    /// Eq. 6 is linear in rounds and monotone in tier latencies.
    #[test]
    fn estimator_properties(
        lat in prop::collection::vec(0.1f64..100.0, 5),
        probs_raw in prop::collection::vec(0.01f64..1.0, 5),
        rounds in 1u64..10_000,
    ) {
        let total: f64 = probs_raw.iter().sum();
        let probs: Vec<f64> = probs_raw.iter().map(|p| p / total).collect();
        let e1 = estimator::estimate_training_time(&lat, &probs, rounds);
        let e2 = estimator::estimate_training_time(&lat, &probs, 2 * rounds);
        prop_assert!((e2 - 2.0 * e1).abs() < 1e-6 * e1.max(1.0));

        let bumped: Vec<f64> = lat.iter().map(|l| l + 1.0).collect();
        let e3 = estimator::estimate_training_time(&bumped, &probs, rounds);
        prop_assert!(e3 > e1);
    }

    /// Policy normalisation survives construction for arbitrary positive
    /// weight vectors.
    #[test]
    fn policy_from_weights_is_normalised(
        weights in prop::collection::vec(0.001f64..10.0, 2..10),
    ) {
        let total: f64 = weights.iter().sum();
        let probs: Vec<f64> = weights.iter().map(|w| w / total).collect();
        let p = Policy::new("w", probs);
        let sum: f64 = p.probs.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
    }

    /// Dataset subsetting preserves the feature/label pairing.
    #[test]
    fn dataset_subset_pairing(
        n in 1usize..50,
        seed in 0u64..100,
    ) {
        let gen = Generator::new(SynthSpec::family(SynthFamily::Mnist), seed);
        let d = gen.generate_uniform(n, 0);
        let idx: Vec<usize> = (0..n).rev().collect();
        let s = d.subset(&idx);
        for (i, &orig) in idx.iter().enumerate() {
            prop_assert_eq!(s.y[i], d.y[orig]);
            prop_assert_eq!(s.x.row(i), d.x.row(orig));
        }
    }
}
