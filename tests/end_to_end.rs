//! End-to-end integration tests: the full TiFL pipeline
//! (data -> cluster -> profiler -> tiering -> scheduler -> training)
//! across every workspace crate.

use tifl::core::scheduler::AdaptiveConfig;
use tifl::prelude::*;
use tifl::sim::dropout::DropoutModel;

fn tiny(seed: u64) -> ExperimentConfig {
    ExperimentConfig::tiny(seed)
}

#[test]
fn full_pipeline_all_static_policies() {
    let cfg = tiny(1);
    let mut runner = cfg.runner();
    for policy in Policy::cifar_set(5) {
        let report = runner.policy(&policy).run();
        assert_eq!(
            report.rounds.len() as u64,
            cfg.rounds,
            "policy {}",
            policy.name
        );
        assert!(report.total_time() > 0.0);
        assert!(
            report.final_accuracy() > 0.0,
            "policy {} never evaluated",
            policy.name
        );
        // Every round selected the configured number of clients.
        assert!(report
            .rounds
            .iter()
            .all(|r| r.selected.len() == cfg.clients_per_round));
    }
}

#[test]
fn full_pipeline_adaptive() {
    let cfg = tiny(2);
    let report = cfg
        .runner()
        .adaptive(Some(AdaptiveConfig {
            interval: 3,
            credits_per_tier: 100,
            gamma: 2.0,
        }))
        .run();
    assert_eq!(report.policy, "adaptive");
    assert_eq!(report.rounds.len() as u64, cfg.rounds);
}

#[test]
fn tiered_policies_only_select_within_one_tier_per_round() {
    let cfg = tiny(3);
    let mut runner = cfg.runner();
    let assignment = runner.tiers().clone();
    let report = runner.policy(&Policy::uniform(5)).run();
    for round in &report.rounds {
        let tiers: Vec<usize> = round
            .selected
            .iter()
            .map(|&c| {
                assignment
                    .tier_of(c)
                    .expect("selected client must be tiered")
            })
            .collect();
        assert!(
            tiers.windows(2).all(|w| w[0] == w[1]),
            "round {} mixed tiers: {tiers:?}",
            round.round
        );
    }
}

#[test]
fn vanilla_selects_across_tiers_over_time() {
    let cfg = tiny(4);
    let mut runner = cfg.runner();
    let assignment = runner.tiers().clone();
    let report = runner.vanilla().run();
    let mut seen = vec![false; assignment.num_tiers()];
    for round in &report.rounds {
        for &c in &round.selected {
            if let Some(t) = assignment.tier_of(c) {
                seen[t] = true;
            }
        }
    }
    assert!(
        seen.iter().filter(|&&s| s).count() >= 3,
        "vanilla should wander across tiers, saw {seen:?}"
    );
}

#[test]
fn fast_policy_reduces_training_time_with_resource_heterogeneity() {
    let mut cfg = tiny(5);
    cfg.cpu_profile = tifl::sim::resource::profiles::CIFAR.to_vec();
    // Measure the selection-policy effect in isolation: the fixed 0.2 s
    // protocol overhead is policy-independent, and at 12 rounds it puts
    // a 2.4 s floor under every policy, which alone pushes fast/vanilla
    // above the asserted 1/2 (the compute-only ratio is ~0.12).
    cfg.latency.base_overhead_sec = 0.0;
    let mut runner = cfg.runner();
    let vanilla = runner.vanilla().run();
    let fast = runner.policy(&Policy::fast(5)).run();
    let uniform = runner.policy(&Policy::uniform(5)).run();
    assert!(
        fast.total_time() < vanilla.total_time() / 2.0,
        "fast {} should be far below vanilla {}",
        fast.total_time(),
        vanilla.total_time()
    );
    assert!(
        uniform.total_time() < vanilla.total_time(),
        "uniform {} should beat vanilla {}",
        uniform.total_time(),
        vanilla.total_time()
    );
}

#[test]
fn dropouts_are_excluded_from_tiers_but_training_continues() {
    let cfg = tiny(6);
    // Kill two devices, then profile and train.
    let mut session = cfg.make_session();
    let mut dropout = DropoutModel::always_available(cfg.num_clients, 1);
    dropout.kill(&[0, 7]);
    // Rebuild a session whose cluster has the dropouts.
    let mut cluster = cfg.build_cluster();
    cluster.set_dropout(dropout);
    let profiler = Profiler::new(cfg.profiler);
    let profile = profiler.profile(&cluster, |c| session.task_for(c));
    assert_eq!(profile.dropouts(), vec![0, 7]);

    // 8 live clients: use 4 tiers so every tier can still supply a full
    // round of 2 clients.
    let tiering = TieringConfig {
        num_tiers: 4,
        ..cfg.tiering
    };
    let tiers = TierAssignment::from_latencies(&profile.mean_latency, &tiering);
    assert_eq!(tiers.num_clients(), cfg.num_clients - 2);
    assert_eq!(tiers.tier_of(0), None);
    assert_eq!(tiers.tier_of(7), None);

    let mut selector = StaticTierSelector::new(tiers, Policy::uniform(4), 2);
    let report = session.run(&mut selector);
    assert_eq!(report.rounds.len() as u64, cfg.rounds);
    // The dead clients are never selected.
    let counts = report.selection_counts(cfg.num_clients);
    assert_eq!(counts[0], 0);
    assert_eq!(counts[7], 0);
}

#[test]
fn leaf_pipeline_end_to_end() {
    let exp = LeafExperiment::tiny(7);
    let mut runner = exp.runner();
    let vanilla = runner.vanilla().run();
    let adaptive = runner.adaptive(None).run();
    assert_eq!(vanilla.rounds.len(), adaptive.rounds.len());
    assert!(adaptive.total_time() > 0.0);
}

#[test]
fn reports_serialize_to_json() {
    let cfg = tiny(8);
    let report = cfg.runner().policy(&Policy::uniform(5)).run();
    let json = serde_json::to_string(&report).expect("report serialises");
    let back: tifl::fl::TrainingReport = serde_json::from_str(&json).expect("report deserialises");
    assert_eq!(back, report);
}

#[test]
fn checkpoint_resume_is_bit_identical_to_continuous_run() {
    let cfg = tiny(10);

    // Continuous run.
    let mut continuous = cfg.make_session();
    let mut sel_a = RandomSelector::new(cfg.num_clients, 99);
    let full: Vec<_> = (0..cfg.rounds)
        .map(|_| continuous.run_round(&mut sel_a))
        .collect();

    // Run half, checkpoint through JSON, restore into a fresh session,
    // finish.
    let mut first_half = cfg.make_session();
    let mut sel_b = RandomSelector::new(cfg.num_clients, 99);
    let half = cfg.rounds / 2;
    let mut resumed_rounds: Vec<_> = (0..half)
        .map(|_| first_half.run_round(&mut sel_b))
        .collect();
    let json = first_half.snapshot().to_json();
    drop(first_half);

    let checkpoint = tifl::fl::checkpoint::Checkpoint::from_json(&json).unwrap();
    let mut second_half = cfg.make_session();
    second_half.restore(&checkpoint);
    let mut sel_c = RandomSelector::new(cfg.num_clients, 99);
    resumed_rounds.extend((half..cfg.rounds).map(|_| second_half.run_round(&mut sel_c)));

    assert_eq!(
        full, resumed_rounds,
        "resumed run diverged from continuous run"
    );
}

#[test]
fn adaptive_checkpoint_resume_is_bit_identical_to_continuous_run() {
    // The adaptive selector is stateful (credits, probabilities,
    // accuracy history): a checkpoint that only captured the session
    // would replay differently. `snapshot_with` + `restore_state` must
    // make the resumed run bit-identical, through JSON.
    let mut cfg = tiny(11);
    cfg.rounds = 16;
    let (tiers, _) = cfg.profile_and_tier();
    let acfg = AdaptiveConfig {
        interval: 4,
        credits_per_tier: 5,
        gamma: 2.0,
    };
    let make_selector = || AdaptiveTierSelector::new(tiers.clone(), acfg, 77);

    // Continuous run.
    let mut continuous = cfg.make_session();
    let mut sel_a = make_selector();
    let full: Vec<_> = (0..cfg.rounds)
        .map(|_| continuous.run_round(&mut sel_a))
        .collect();

    // Half, checkpoint (session + selector state) through JSON, restore
    // into fresh objects, finish.
    let mut first_half = cfg.make_session();
    let mut sel_b = make_selector();
    let half = cfg.rounds / 2;
    let mut resumed_rounds: Vec<_> = (0..half)
        .map(|_| first_half.run_round(&mut sel_b))
        .collect();
    let json = first_half.snapshot_with(&sel_b).to_json();
    drop(first_half);
    drop(sel_b);

    let checkpoint = Checkpoint::from_json(&json).unwrap();
    let state = checkpoint
        .selector
        .as_ref()
        .expect("adaptive selectors checkpoint their state");
    let mut second_half = cfg.make_session();
    second_half.restore(&checkpoint);
    let mut sel_c = make_selector();
    tifl::fl::ClientSelector::restore_state(&mut sel_c, state);
    resumed_rounds.extend((half..cfg.rounds).map(|_| second_half.run_round(&mut sel_c)));

    assert_eq!(
        full, resumed_rounds,
        "adaptive resumed run diverged from continuous run"
    );
    assert_eq!(sel_a.credits(), sel_c.credits());
    assert_eq!(sel_a.probs(), sel_c.probs());
}

#[test]
fn accuracy_improves_with_training_on_easy_data() {
    let mut cfg = tiny(9);
    cfg.rounds = 40;
    cfg.eval_every = 1;
    let report = cfg.runner().vanilla().run();
    let early = report.rounds[0].accuracy.unwrap();
    let late = report.final_accuracy();
    assert!(late > early, "no learning: round0 {early}, final {late}");
    assert!(late > 0.5, "final accuracy too low: {late}");
}
