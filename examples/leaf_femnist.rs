//! LEAF/FEMNIST benchmark at demo scale (§5.2.6).
//!
//! ```sh
//! cargo run --release --example leaf_femnist
//! ```
//!
//! Builds a FEMNIST-like federation (62 classes, power-law writer sizes,
//! per-writer style skew), assigns heterogeneous hardware uniformly at
//! random — the paper's LEAF extension — and compares vanilla, uniform
//! and adaptive selection.

use tifl::prelude::*;

fn main() {
    let mut exp = LeafExperiment::paper(3);
    // Demo scale: 60 writers, 200 rounds (paper: 182 writers, 2000).
    exp.data.num_clients = 60;
    exp.rounds = 200;
    exp.eval_every = 10;

    let fed = tifl::leaf::build_femnist(&exp.data, 99);
    let sizes = fed.train_sizes();
    println!(
        "{} writers, {} total samples (min {} / median {} / max {})",
        fed.num_clients(),
        sizes.iter().sum::<usize>(),
        sizes.iter().min().unwrap(),
        {
            let mut s = sizes.clone();
            s.sort_unstable();
            s[s.len() / 2]
        },
        sizes.iter().max().unwrap(),
    );

    let mut runner = exp.runner();
    let vanilla = runner.vanilla().run();
    let uniform = runner.policy(&Policy::uniform(5)).run();
    let adaptive = runner.adaptive(None).run();

    println!("\n{:<10} {:>12} {:>11}", "policy", "time [s]", "final acc");
    for r in [&vanilla, &uniform, &adaptive] {
        println!(
            "{:<10} {:>12.0} {:>11.3}",
            r.policy,
            r.total_time(),
            r.final_accuracy()
        );
    }
    println!(
        "\nadaptive speedup over vanilla: {:.1}x",
        vanilla.total_time() / adaptive.total_time()
    );
}
