//! Client-level differential-privacy accounting for tiered selection
//! (§4.6).
//!
//! ```sh
//! cargo run --release --example privacy_accounting
//! ```
//!
//! Shows how random-subsampling amplification interacts with tier
//! policies: each client's local mechanism is (ε, δ)-DP; selecting
//! clients with rate q amplifies the per-round guarantee to (qε, qδ).
//! Tiered selection changes q per tier — `q_max` governs the overall
//! guarantee.

use tifl::core::privacy::{compare, DpGuarantee};
use tifl::prelude::*;

fn main() {
    let base = DpGuarantee::new(2.0, 1e-5);
    let k = 50;
    let c = 5;
    let tiers = [10usize; 5];

    println!(
        "each client's local mechanism: ({}, {:.0e})-DP",
        base.epsilon, base.delta
    );
    println!("pool |K| = {k}, selected per round |C| = {c}\n");

    println!(
        "{:<10} {:>8} {:>16} {:>16}",
        "policy", "q_max", "per-round eps", "per-round delta"
    );
    for policy in Policy::cifar_set(5) {
        if policy.is_vanilla() {
            let g = base.amplify(c as f64 / k as f64);
            println!(
                "{:<10} {:>8.3} {:>16.4} {:>16.2e}   (q = |C|/|K|)",
                "vanilla",
                c as f64 / k as f64,
                g.epsilon,
                g.delta
            );
        } else {
            let cmp = compare(base, k, c, &tiers, &policy.probs);
            println!(
                "{:<10} {:>8.3} {:>16.4} {:>16.2e}",
                policy.name, cmp.q_max, cmp.tiered.epsilon, cmp.tiered.delta
            );
        }
    }

    println!(
        "\nTakeaway: tiering never invalidates the amplified guarantee; the\n\
         uniform policy matches vanilla exactly, and concentrating on a tier\n\
         trades some amplification for speed — quantified above."
    );
}
