//! Visualising the straggler problem (Eq. 1) with round timelines.
//!
//! ```sh
//! cargo run --release --example straggler_timeline
//! ```
//!
//! Replays one vanilla round and one same-tier round through the
//! discrete-event trace and prints who finished when — the aggregator's
//! idle window is the entire case for tiering. Also shows the
//! hierarchical master-child aggregation cost at fleet scale.

use tifl::fl::hierarchy::AggregationTree;
use tifl::fl::timeline::{RoundTimeline, TimelineEvent};
use tifl::prelude::*;

fn print_trace(label: &str, timeline: &RoundTimeline) {
    println!("\n-- {label} --");
    for (t, e) in &timeline.events {
        match e {
            TimelineEvent::Dispatch { client } => {
                println!("  t={t:>8.2}s  dispatch -> client {client}");
            }
            TimelineEvent::Complete { client } => {
                println!("  t={t:>8.2}s  update   <- client {client}");
            }
            TimelineEvent::TimedOut { client } => {
                println!("  t={t:>8.2}s  TIMEOUT     client {client}");
            }
            TimelineEvent::Cancelled { client } => {
                println!("  t={t:>8.2}s  CANCELLED   client {client}");
            }
            TimelineEvent::RoundEnd => println!("  t={t:>8.2}s  round end"),
        }
    }
    println!(
        "  aggregator idle between first and last update: {:.2}s",
        timeline.straggler_wait()
    );
}

fn main() {
    let cfg = ExperimentConfig::cifar10_resource_het(5);
    let session = cfg.make_session();
    let (tiers, _) = cfg.profile_and_tier();

    // A vanilla round: one client from each hardware group.
    let mixed: Vec<(usize, Option<f64>)> = [0usize, 11, 22, 33, 44]
        .iter()
        .map(|&c| (c, session.cluster().response(c, 0, &session.task_for(c))))
        .collect();
    let t_mixed = RoundTimeline::build(&mixed, 1000.0, None);
    print_trace("vanilla round (one client per hardware group)", &t_mixed);

    // A TiFL round: five clients from the fastest tier.
    let same: Vec<(usize, Option<f64>)> = tiers.tiers[0].clients[..5]
        .iter()
        .map(|&c| (c, session.cluster().response(c, 0, &session.task_for(c))))
        .collect();
    let t_same = RoundTimeline::build(&same, 1000.0, None);
    print_trace("TiFL round (five clients from tier 0)", &t_same);

    println!(
        "\nround latency: vanilla {:.1}s vs same-tier {:.1}s ({:.1}x)",
        t_mixed.round_end(),
        t_same.round_end(),
        t_mixed.round_end() / t_same.round_end()
    );

    // Aggregation at fleet scale: the master-child tree of §3.1.
    let tree = AggregationTree::with_fan_out(100);
    let bytes = 4 * cfg.model.build(0).param_count() as u64;
    println!("\nhierarchical aggregation ({}-byte updates):", bytes);
    for updates in [5usize, 100, 10_000, 100_000] {
        println!(
            "  {updates:>6} updates: flat {:>8.3}s  tree {:>8.3}s ({} children)",
            tree.flat_latency(updates, bytes),
            tree.aggregation_latency(updates, bytes),
            tree.num_children(updates),
        );
    }
}
