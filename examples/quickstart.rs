//! Quickstart: profile, tier, and train a federated model with TiFL.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the full pipeline on a small heterogeneous deployment:
//! 1. build a federated dataset and a simulated testbed,
//! 2. profile every client's response latency and form tiers,
//! 3. train with vanilla random selection and with TiFL's uniform tier
//!    policy, and compare training time and accuracy.

use tifl::prelude::*;

fn main() {
    // A 20-client deployment with a 20x CPU spread and IID local data.
    let mut cfg = ExperimentConfig::cifar10_resource_het(7);
    cfg.num_clients = 20;
    // 20 clients over 5 tiers leaves 4 clients per tier, so a tier must
    // be able to supply a full round: select 3 per round.
    cfg.clients_per_round = 3;
    cfg.rounds = 60;
    cfg.eval_every = 5;
    cfg.name = "quickstart".into();

    // Step 1-2: profile and tier (§4.2 of the paper). The runner
    // caches this profile for every run composed from it below.
    let mut runner = cfg.runner();
    let (tiers, profile) = runner.profile().clone();
    println!(
        "profiled {} clients ({} dropouts)",
        cfg.num_clients,
        profile.dropouts().len()
    );
    for (t, tier) in tiers.tiers.iter().enumerate() {
        println!(
            "  tier {t}: {:>2} clients, mean latency {:>7.2}s",
            tier.clients.len(),
            tier.avg_latency
        );
    }

    // Step 3: vanilla FL vs TiFL's uniform tier selection.
    let vanilla = runner.vanilla().run();
    let uniform = runner.policy(&Policy::uniform(tiers.num_tiers())).run();

    println!("\n{:<10} {:>12} {:>11}", "policy", "time [s]", "final acc");
    for r in [&vanilla, &uniform] {
        println!(
            "{:<10} {:>12.0} {:>11.3}",
            r.policy,
            r.total_time(),
            r.final_accuracy()
        );
    }
    println!(
        "\nTiFL speedup over vanilla: {:.1}x at {:+.1} accuracy points",
        vanilla.total_time() / uniform.total_time(),
        (uniform.final_accuracy() - vanilla.final_accuracy()) * 100.0
    );
}
