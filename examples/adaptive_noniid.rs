//! Adaptive tier selection under strong non-IID skew.
//!
//! ```sh
//! cargo run --release --example adaptive_noniid
//! ```
//!
//! Reproduces the §5.2.5 story at demo scale: with 2 classes per client,
//! static tier policies bias the model toward whatever data lives in the
//! tiers they favour; Algorithm 2 watches per-tier accuracy and shifts
//! selection probability toward lagging tiers, recovering accuracy while
//! keeping most of the tiered speedup.

use tifl::core::scheduler::AdaptiveConfig;
use tifl::prelude::*;

fn main() {
    let mut cfg = ExperimentConfig::cifar10_resource_noniid(2, 11);
    cfg.rounds = 150;
    cfg.name = "adaptive-demo".into();

    println!(
        "scenario: {} ({} clients, non-IID(2))\n",
        cfg.name, cfg.num_clients
    );

    let mut runner = cfg.runner();
    let vanilla = runner.vanilla().run();
    let uniform = runner.policy(&Policy::uniform(5)).run();
    let fast = runner.policy(&Policy::fast(5)).run();
    let adaptive = runner
        .adaptive(Some(AdaptiveConfig {
            interval: 10,
            credits_per_tier: 2 * cfg.rounds / 5,
            gamma: 2.0,
        }))
        .run();

    println!(
        "{:<10} {:>12} {:>11} {:>10}",
        "policy", "time [s]", "final acc", "best acc"
    );
    for r in [&vanilla, &uniform, &fast, &adaptive] {
        println!(
            "{:<10} {:>12.0} {:>11.3} {:>10.3}",
            r.policy,
            r.total_time(),
            r.final_accuracy(),
            r.best_accuracy()
        );
    }

    println!(
        "\nadaptive vs vanilla: {:.1}x faster, {:+.1} accuracy points",
        vanilla.total_time() / adaptive.total_time(),
        (adaptive.final_accuracy() - vanilla.final_accuracy()) * 100.0
    );
    println!(
        "adaptive vs fast:    {:.1}x slower, {:+.1} accuracy points",
        adaptive.total_time() / fast.total_time(),
        (adaptive.final_accuracy() - fast.final_accuracy()) * 100.0
    );
}
