//! Building a custom deployment from the low-level APIs.
//!
//! ```sh
//! cargo run --release --example custom_deployment
//! ```
//!
//! The preset `ExperimentConfig`s cover the paper's setups; this example
//! wires the pieces manually — a bespoke cluster (three hardware kinds,
//! one flaky group), a CNN model, shard-partitioned data and a custom
//! static policy — and exercises dropout exclusion in the profiler.

use tifl::core::profiler::{Profiler, ProfilerConfig};
use tifl::core::scheduler::StaticTierSelector;
use tifl::data::partition;
use tifl::prelude::*;
use tifl::sim::dropout::DropoutModel;
use tifl::sim::GroupSpec;
use tifl::tensor::seed_rng;

fn main() {
    let seed = 5;

    // Data: 12 clients, shard-based non-IID (2 shards each).
    let spec = SynthSpec::family(SynthFamily::FashionMnist);
    let gen = Generator::new(spec, seed);
    let part = partition::shards(12, 2_400, 10, 24, 2, &mut seed_rng(seed));
    let fed = FederatedDataset::materialize(&gen, &part, 0.1, 20, seed);

    // Testbed: three hardware kinds + one permanently dead device.
    let mut cluster_cfg = ClusterConfig {
        groups: vec![
            GroupSpec {
                count: 4,
                cpu_share: 4.0,
            },
            GroupSpec {
                count: 4,
                cpu_share: 1.0,
            },
            GroupSpec {
                count: 4,
                cpu_share: 0.25,
            },
        ],
        bandwidth_bps: 500_000.0,
        latency: LatencyModelConfig::default(),
        shuffle_assignment: false,
        seed,
    };
    cluster_cfg.latency.flops_per_cpu_sec = 5.0e7;
    let mut cluster = Cluster::new(&cluster_cfg);
    let mut dropout = DropoutModel::always_available(12, seed);
    dropout.kill(&[11]);
    cluster.set_dropout(dropout);

    // Model: the CNN variant (conv-conv-pool-dense, §5's architecture
    // family) over the 8x8 synthetic images.
    let session_cfg = SessionConfig {
        model: ModelSpec::Cnn {
            side: 8,
            channels: (16, 32),
            hidden: 128,
            classes: 10,
        },
        client: ClientConfig::paper_synthetic(),
        clients_per_round: 3,
        rounds: 40,
        eval_every: 5,
        tmax_sec: 60.0,
        aggregation: AggregationMode::WaitAll,
        comm: None,
        seed,
    };
    let mut session = Session::new(fed, cluster, session_cfg);

    // Profile + tier into 3 tiers; the dead device must be excluded.
    let profiler = Profiler::new(ProfilerConfig {
        sync_rounds: 3,
        tmax_sec: 60.0,
    });
    let profile = profiler.profile(session.cluster(), |c| session.task_for(c));
    println!("dropouts detected: {:?}", profile.dropouts());
    let tiers = TierAssignment::from_latencies(
        &profile.mean_latency,
        &TieringConfig {
            num_tiers: 3,
            ..Default::default()
        },
    );
    for (t, tier) in tiers.tiers.iter().enumerate() {
        println!(
            "tier {t}: clients {:?} (mean {:.1}s)",
            tier.clients, tier.avg_latency
        );
    }

    // Train with a custom 60/30/10 policy.
    let policy = Policy::new("custom", vec![0.6, 0.3, 0.1]);
    let mut selector = StaticTierSelector::new(tiers, policy, seed);
    let report = session.run(&mut selector);
    println!(
        "\ncustom policy: {:.0} virtual s, final accuracy {:.3}",
        report.total_time(),
        report.final_accuracy()
    );
}
