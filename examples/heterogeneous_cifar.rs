//! The paper's motivating scenario: a CIFAR-10-like workload on a
//! fleet with a 40x CPU spread (4 CPUs down to 0.1), comparing every
//! static selection policy of Table 1 and validating the Eq. 6
//! training-time estimator against measurements.
//!
//! ```sh
//! cargo run --release --example heterogeneous_cifar
//! ```

use tifl::core::estimator;
use tifl::prelude::*;

fn main() {
    let mut cfg = ExperimentConfig::cifar10_resource_het(42);
    cfg.rounds = 120; // shortened from the paper's 500 for a quick demo
    let mut runner = cfg.runner();
    let tiers = runner.tiers().clone();

    println!(
        "tier latencies: {:?}",
        tiers
            .tier_latencies()
            .iter()
            .map(|l| format!("{l:.1}s"))
            .collect::<Vec<_>>()
    );

    println!(
        "\n{:<10} {:>13} {:>13} {:>9} {:>10}",
        "policy", "estimate [s]", "measured [s]", "MAPE [%]", "final acc"
    );
    for policy in Policy::cifar_set(tiers.num_tiers()) {
        let report = runner.policy(&policy).run();
        if policy.is_vanilla() {
            println!(
                "{:<10} {:>13} {:>13.0} {:>9} {:>10.3}",
                policy.name,
                "-",
                report.total_time(),
                "-",
                report.final_accuracy()
            );
        } else {
            let est = estimator::estimate_for_policy(&tiers, &policy, cfg.rounds);
            println!(
                "{:<10} {:>13.0} {:>13.0} {:>9.2} {:>10.3}",
                policy.name,
                est,
                report.total_time(),
                estimator::mape(est, report.total_time()),
                report.final_accuracy()
            );
        }
    }
}
